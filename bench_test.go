// Package repro's benchmark harness: one benchmark per table and figure of
// the paper (running the virtual-time reproduction at full System X scale)
// plus real-runtime microbenchmarks of the redistribution library, the
// distributed kernels and the message-passing layer, and the ablation
// benches called out in DESIGN.md.
//
//	go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/blacs"
	"repro/internal/blockcyclic"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/redistrib"
	"repro/internal/scheduler"
	"repro/internal/scheduler/arbiter"
	"repro/internal/scheduler/fairshare"
	"repro/internal/scheduler/rebalance"
	"repro/internal/simcluster"
	"repro/internal/workload"
)

// --- Paper experiments (virtual time, System X scale) ------------------------

func BenchmarkTable2Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2(); len(rows) != 10 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

func BenchmarkFig2aLUSweep(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2a(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2bRedistOverhead(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		if data := experiments.Fig2b(params); len(data) != 7 {
			b.Fatal("missing series")
		}
	}
}

func BenchmarkFig3aResizeTrace(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		iters, err := experiments.Fig3a(params)
		if err != nil {
			b.Fatal(err)
		}
		if len(iters) != 10 {
			b.Fatalf("%d iterations", len(iters))
		}
	}
}

func BenchmarkFig3bCheckpointVsReshape(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3b(params)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

func BenchmarkFig4Workload1(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunW1(params)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*cmp.StaticUtilization, "static-util-%")
			b.ReportMetric(100*cmp.DynamicUtilization, "dynamic-util-%")
		}
	}
}

func BenchmarkTable4Turnaround(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunW1(params)
		if err != nil {
			b.Fatal(err)
		}
		if len(cmp.Rows) != 5 {
			b.Fatalf("%d rows", len(cmp.Rows))
		}
	}
}

func BenchmarkFig5Workload2(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunW2(params)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*cmp.DynamicUtilization, "dynamic-util-%")
		}
	}
}

func BenchmarkTable5Turnaround(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunW2(params)
		if err != nil {
			b.Fatal(err)
		}
		if len(cmp.Rows) != 4 {
			b.Fatalf("%d rows", len(cmp.Rows))
		}
	}
}

// BenchmarkWorkloadSimScale measures simulator throughput on a heavier
// synthetic mix (20 jobs), showing the virtual-time engine itself is cheap.
func BenchmarkWorkloadSimScale(b *testing.B) {
	params := perfmodel.SystemX()
	var jobs []simcluster.JobInput
	sizes := []int{8000, 12000, 14000, 16000, 20000}
	for i := 0; i < 20; i++ {
		n := sizes[i%len(sizes)]
		start := experiments.StartTopo(n)
		jobs = append(jobs, simcluster.JobInput{
			Spec: scheduler.JobSpec{
				Name: "job", App: "lu", ProblemSize: n, Iterations: 10,
				InitialTopo: start, Chain: experiments.Chain(n),
			},
			Model:   perfmodel.AppModel{App: "lu", N: n},
			Arrival: float64(i) * 120,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, jobs).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerThroughput measures the scheduler engine end to end on
// large generated workloads driven through the virtual-time simulator: a
// 1024-processor cluster, exponential arrivals, and the full resize-policy
// machinery. The "event" cases run the indexed, sharded core; "linear" runs
// the pre-refactor linear-scan reference on the same 10k-job mix, showing
// the speedup from the event-driven refactor. The 100k- and 1M-job cases
// run with allocation tracing and per-iteration result rows disabled
// (utilization stays exact via the busy-time integral). Allocation stats
// are reported so CI's -benchmem run lands allocs/op and B/op in
// BENCH_scheduler.json alongside jobs/s.
func BenchmarkSchedulerThroughput(b *testing.B) {
	params := perfmodel.SystemX()
	const clusterProcs = 1024
	mix := func(b *testing.B, jobs int) []simcluster.JobInput {
		in, err := workload.Generate(workload.GenConfig{
			Seed: 7, Jobs: jobs, MeanInterarrival: 2, MaxProcs: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		return in
	}
	run := func(b *testing.B, jobs int, lean bool, mk func() scheduler.Interface) {
		in := mix(b, jobs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim := simcluster.New(clusterProcs, simcluster.Dynamic, params, in).WithCore(mk())
			if lean {
				sim.WithoutIterRecords()
			}
			res, err := sim.Run()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Jobs) != jobs {
				b.Fatalf("%d jobs finished, want %d", len(res.Jobs), jobs)
			}
		}
		b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	}
	b.Run("event-10k", func(b *testing.B) {
		run(b, 10_000, false, func() scheduler.Interface {
			return scheduler.NewCore(clusterProcs, true)
		})
	})
	b.Run("event-100k", func(b *testing.B) {
		run(b, 100_000, true, func() scheduler.Interface {
			c := scheduler.NewCoreSharded(clusterProcs, 16, true)
			c.DisableTrace()
			return c
		})
	})
	// The 1M-job case extends the scaling curve one more decade: CI tracks
	// it in BENCH_scheduler.json (and gates jobs/s@1M against jobs/s@10k,
	// see cmd/benchjson -gate) so super-linear regressions in the queue or
	// pool indexes show up as a bend between 100k and 1M.
	b.Run("event-1M", func(b *testing.B) {
		run(b, 1_000_000, true, func() scheduler.Interface {
			c := scheduler.NewCoreSharded(clusterProcs, 16, true)
			c.DisableTrace()
			return c
		})
	})
	b.Run("linear-10k", func(b *testing.B) {
		run(b, 10_000, false, func() scheduler.Interface {
			return scheduler.NewLinearCore(clusterProcs, true)
		})
	})
}

// BenchmarkArbiter measures cluster-wide arbitration end to end on the
// contended Table-3-style mix (24 jobs, 3 priority levels, arrivals well
// above the W1/W2 rate): the published FCFS single-job path versus the
// benefit-ranked arbiter with a perfmodel predictor. mean-wait-s and
// p99-wait-s make the queue-wait win (and its tail) visible next to the
// throughput cost of the cluster-wide snapshot reads; the fairshare cases
// run the three-tenant noisy-neighbor mix and additionally report the
// steady victims' tail wait as victim-p99-s. CI uploads every series in
// BENCH_scheduler.json.
func BenchmarkArbiter(b *testing.B) {
	params := perfmodel.SystemX()
	jobs, err := experiments.ContendedMix()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, jobs []simcluster.JobInput, mk func(s *simcluster.Sim) *simcluster.Sim) *simcluster.Result {
		var res *simcluster.Result
		for i := 0; i < b.N; i++ {
			r, err := mk(simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, jobs)).Run()
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
		b.ReportMetric(res.MeanQueueWait(), "mean-wait-s")
		b.ReportMetric(res.QueueWaitP99(), "p99-wait-s")
		b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		return res
	}
	b.Run("fcfs", func(b *testing.B) {
		run(b, jobs, func(s *simcluster.Sim) *simcluster.Sim { return s })
	})
	b.Run("benefit-ranked", func(b *testing.B) {
		run(b, jobs, func(s *simcluster.Sim) *simcluster.Sim {
			return s.WithArbiter(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, jobs)})
		})
	})
	noisy, err := experiments.NoisyNeighborMix()
	if err != nil {
		b.Fatal(err)
	}
	victimP99 := func(res *simcluster.Result) float64 {
		p := res.TenantQueueWaitP99("victim1")
		if q := res.TenantQueueWaitP99("victim2"); q > p {
			p = q
		}
		return p
	}
	b.Run("benefit-noisy", func(b *testing.B) {
		res := run(b, noisy, func(s *simcluster.Sim) *simcluster.Sim {
			return s.WithArbiter(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, noisy)})
		})
		b.ReportMetric(victimP99(res), "victim-p99-s")
	})
	b.Run("fairshare-noisy", func(b *testing.B) {
		res := run(b, noisy, func(s *simcluster.Sim) *simcluster.Sim {
			fs := fairshare.New(nil)
			fs.Inner = &arbiter.BenefitRanked{Predict: simcluster.Predictor(params, noisy)}
			return s.WithArbiter(fs)
		})
		b.ReportMetric(victimP99(res), "victim-p99-s")
	})
}

// timedPlanner wraps a Planner arbiter and accumulates wall time spent
// inside Rebalance ticks, so the planning cost can be reported as its own
// metric instead of silently deflating jobs/s. It deliberately does not
// forward StartPicker (the wrapped rebalancer isn't one), so SetArbiter
// sees the same method set as the unwrapped arbiter.
type timedPlanner struct {
	scheduler.Arbiter
	planNS int64
	ticks  int64
}

func (t *timedPlanner) Rebalance(snap scheduler.ClusterSnapshot) {
	start := time.Now()
	t.Arbiter.(scheduler.Planner).Rebalance(snap)
	t.planNS += time.Since(start).Nanoseconds()
	t.ticks++
}

// BenchmarkRebalance measures the global rebalancer end to end on the same
// contended mix as BenchmarkArbiter: the reactive benefit-ranked arbiter
// alone versus the planning layer ticking every
// experiments.DefaultRebalanceTick seconds. makespan-s exposes the
// scheduling win the planner buys; jobs/s its total throughput cost. The
// rebalance case additionally splits the planner-tick cost into plan-ns/op
// (mean wall time per planning tick) and sched-jobs/s (throughput with
// planning time subtracted), so the reactive and planned modes compare on
// the same scheduling work. CI uploads every series in BENCH_scheduler.json.
func BenchmarkRebalance(b *testing.B) {
	params := perfmodel.SystemX()
	jobs, err := experiments.ContendedMix()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mk func(s *simcluster.Sim) *simcluster.Sim) {
		var makespan float64
		for i := 0; i < b.N; i++ {
			res, err := mk(simcluster.New(workload.ClusterProcs, simcluster.Dynamic, params, jobs)).Run()
			if err != nil {
				b.Fatal(err)
			}
			makespan = res.Makespan
		}
		b.ReportMetric(makespan, "makespan-s")
		b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	}
	b.Run("reactive", func(b *testing.B) {
		run(b, func(s *simcluster.Sim) *simcluster.Sim {
			return s.WithArbiter(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, jobs)})
		})
	})
	b.Run("rebalance", func(b *testing.B) {
		tp := &timedPlanner{}
		run(b, func(s *simcluster.Sim) *simcluster.Sim {
			reb := rebalance.New(&arbiter.BenefitRanked{Predict: simcluster.Predictor(params, jobs)})
			reb.Predict = simcluster.Predictor(params, jobs)
			reb.RedistCost = simcluster.RedistPredictor(params, jobs)
			tp.Arbiter = reb
			return s.WithArbiter(tp).WithRebalance(experiments.DefaultRebalanceTick)
		})
		if tp.ticks > 0 {
			b.ReportMetric(float64(tp.planNS)/float64(tp.ticks), "plan-ns/op")
		}
		if sched := b.Elapsed().Seconds() - float64(tp.planNS)/1e9; sched > 0 {
			b.ReportMetric(float64(len(jobs))*float64(b.N)/sched, "sched-jobs/s")
		}
	})
}

// --- Real-runtime redistribution benches --------------------------------------

// benchRedistribute moves a m x m matrix between two grids on real goroutine
// ranks and reports bytes/s.
func benchRedistribute(b *testing.B, m, nb int, from, to grid.Topology) {
	src := blockcyclic.Layout{M: m, N: m, MB: nb, NB: nb, Grid: from}
	dst := blockcyclic.Layout{M: m, N: m, MB: nb, NB: nb, Grid: to}
	global := make([]float64, m*m)
	rng := rand.New(rand.NewSource(1))
	for i := range global {
		global[i] = rng.Float64()
	}
	pieces := blockcyclic.Distribute(global, src)
	world := from.Count()
	if to.Count() > world {
		world = to.Count()
	}
	pl, err := redistrib.NewPlan(src, dst)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(m * m * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(world, func(c *mpi.Comm) error {
			var mine []float64
			if c.Rank() < from.Count() {
				mine = pieces[c.Rank()].Data
			}
			pl.Execute(c, mine)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealRedistributeExpand4to6(b *testing.B) {
	benchRedistribute(b, 240, 8, grid.Topology{Rows: 2, Cols: 2}, grid.Topology{Rows: 2, Cols: 3})
}

func BenchmarkRealRedistributeShrink6to4(b *testing.B) {
	benchRedistribute(b, 240, 8, grid.Topology{Rows: 2, Cols: 3}, grid.Topology{Rows: 2, Cols: 2})
}

func BenchmarkRealRedistribute1D(b *testing.B) {
	benchRedistribute(b, 240, 8, grid.Row1D(3), grid.Row1D(4))
}

// BenchmarkRedistribute compares per-array execution against the fused
// MultiPlan engine on real goroutine ranks: the same arrays, the same grid
// pair, one Plan.Execute per array versus one fused execution carrying all
// of them. The msgs/op metric makes the win visible — for k same-shape
// arrays the fused path sends k x fewer messages.
func BenchmarkRedistribute(b *testing.B) {
	const m, nb = 240, 8
	mkCase := func(nArrays int, from, to grid.Topology) ([]blockcyclic.Layout, []blockcyclic.Layout, [][]*blockcyclic.Matrix, int) {
		srcs := make([]blockcyclic.Layout, nArrays)
		dsts := make([]blockcyclic.Layout, nArrays)
		pieces := make([][]*blockcyclic.Matrix, nArrays)
		rng := rand.New(rand.NewSource(1))
		for a := 0; a < nArrays; a++ {
			srcs[a] = blockcyclic.Layout{M: m, N: m, MB: nb, NB: nb, Grid: from}
			dsts[a] = blockcyclic.Layout{M: m, N: m, MB: nb, NB: nb, Grid: to}
			global := make([]float64, m*m)
			for i := range global {
				global[i] = rng.Float64()
			}
			pieces[a] = blockcyclic.Distribute(global, srcs[a])
		}
		world := from.Count()
		if to.Count() > world {
			world = to.Count()
		}
		return srcs, dsts, pieces, world
	}
	type gridPair struct {
		name     string
		from, to grid.Topology
	}
	pairs := []gridPair{
		{"expand4to6", grid.Topology{Rows: 2, Cols: 2}, grid.Topology{Rows: 2, Cols: 3}},
		{"shrink9to4", grid.Topology{Rows: 3, Cols: 3}, grid.Topology{Rows: 2, Cols: 2}},
	}
	const nArrays = 3
	for _, pair := range pairs {
		srcs, dsts, pieces, world := mkCase(nArrays, pair.from, pair.to)
		b.Run("single-3arrays-"+pair.name, func(b *testing.B) {
			plans := make([]*redistrib.Plan, nArrays)
			for a := range plans {
				var err error
				if plans[a], err = redistrib.NewPlan(srcs[a], dsts[a]); err != nil {
					b.Fatal(err)
				}
			}
			var msgs atomic.Int64
			b.SetBytes(int64(nArrays * m * m * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := mpi.Run(world, func(c *mpi.Comm) error {
					for a := 0; a < nArrays; a++ {
						var mine []float64
						if c.Rank() < pair.from.Count() {
							mine = pieces[a][c.Rank()].Data
						}
						_, st := plans[a].ExecuteStats(c, mine)
						msgs.Add(int64(st.MessagesSent))
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(msgs.Load())/float64(b.N), "msgs/op")
		})
		b.Run("multi-3arrays-"+pair.name, func(b *testing.B) {
			mp, err := redistrib.NewMultiPlan(srcs, dsts)
			if err != nil {
				b.Fatal(err)
			}
			var msgs atomic.Int64
			b.SetBytes(int64(nArrays * m * m * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := mpi.Run(world, func(c *mpi.Comm) error {
					mine := make([][]float64, nArrays)
					if c.Rank() < pair.from.Count() {
						for a := 0; a < nArrays; a++ {
							mine[a] = pieces[a][c.Rank()].Data
						}
					}
					_, st := mp.ExecuteStats(c, mine)
					msgs.Add(int64(st.MessagesSent))
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(msgs.Load())/float64(b.N), "msgs/op")
		})
	}
	// Plan-construction cost the session cache amortizes away on repeated
	// oscillation between the same grid pair.
	b.Run("plan-build-3arrays", func(b *testing.B) {
		srcs, dsts, _, _ := mkCase(nArrays, pairs[0].from, pairs[0].to)
		for i := 0; i < b.N; i++ {
			if _, err := redistrib.NewMultiPlan(srcs, dsts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRealCheckpointRedistribute(b *testing.B) {
	m, nb := 240, 8
	from := grid.Topology{Rows: 2, Cols: 2}
	to := grid.Topology{Rows: 2, Cols: 3}
	src := blockcyclic.Layout{M: m, N: m, MB: nb, NB: nb, Grid: from}
	dst := blockcyclic.Layout{M: m, N: m, MB: nb, NB: nb, Grid: to}
	global := make([]float64, m*m)
	pieces := blockcyclic.Distribute(global, src)
	dir := b.TempDir()
	b.SetBytes(int64(m * m * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(6, func(c *mpi.Comm) error {
			var mine []float64
			if c.Rank() < 4 {
				mine = pieces[c.Rank()].Data
			}
			_, _, err := redistrib.CheckpointRedistributeDir(c, src, mine, dst, dir)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: circulant schedule vs naive single-phase ----------------------

func BenchmarkScheduleCirculant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched := redistrib.Schedule1D(36, 48)
		if redistrib.MaxReceiveContention(sched) != 1 {
			b.Fatal("circulant schedule has contention")
		}
	}
	b.ReportMetric(float64(len(redistrib.Schedule1D(36, 48))), "steps")
}

func BenchmarkScheduleNaive(b *testing.B) {
	var contention int
	for i := 0; i < b.N; i++ {
		sched := redistrib.ScheduleNaive(36, 48)
		contention = redistrib.MaxReceiveContention(sched)
	}
	b.ReportMetric(float64(contention), "max-contention")
}

// BenchmarkResampleVsSchedule compares the generic element-wise resampling
// path against the circulant-schedule path on the same transition (ablation:
// the schedule-based algorithm is the paper's contribution, resampling the
// generic fallback for block-size changes).
func BenchmarkResampleGenericPath(b *testing.B) {
	m, nb := 240, 8
	from := grid.Topology{Rows: 2, Cols: 2}
	to := grid.Topology{Rows: 2, Cols: 3}
	src := blockcyclic.Layout{M: m, N: m, MB: nb, NB: nb, Grid: from}
	dst := blockcyclic.Layout{M: m, N: m, MB: nb, NB: nb, Grid: to}
	global := make([]float64, m*m)
	pieces := blockcyclic.Distribute(global, src)
	b.SetBytes(int64(m * m * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(6, func(c *mpi.Comm) error {
			var mine []float64
			if c.Rank() < 4 {
				mine = pieces[c.Rank()].Data
			}
			_, err := redistrib.Resample(c, src, mine, dst)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Policy ablation and load sweep -------------------------------------------

func BenchmarkAblationPolicies(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PolicyAblation(params)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Policy == "paper" {
					b.ReportMetric(100*r.Utilization, "paper-util-%")
				}
			}
		}
	}
}

func BenchmarkLoadSweep(b *testing.B) {
	params := perfmodel.SystemX()
	for i := 0; i < b.N; i++ {
		pts, err := workload.LoadSweep(36, params, 12, 5, []float64{200, 800})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatal("missing points")
		}
	}
}

// --- Real distributed kernels -------------------------------------------------

func BenchmarkRealDistLU(b *testing.B) {
	const n, nb = 96, 8
	topo := grid.Topology{Rows: 2, Cols: 2}
	l := blockcyclic.Layout{M: n, N: n, MB: nb, NB: nb, Grid: topo}
	global := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			global[i*n+j] = 1.0 / (1.0 + float64((i-j)*(i-j)))
		}
		global[i*n+i] += float64(n)
	}
	pieces := blockcyclic.Distribute(global, l)
	b.SetBytes(int64(n * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) error {
			ctx, err := blacs.New(c, topo)
			if err != nil {
				return err
			}
			local := make([]float64, len(pieces[c.Rank()].Data))
			copy(local, pieces[c.Rank()].Data)
			return apps.DistLU(ctx, l, local)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealDistMatMul(b *testing.B) {
	const n, nb = 64, 8
	topo := grid.Topology{Rows: 2, Cols: 2}
	l := blockcyclic.Layout{M: n, N: n, MB: nb, NB: nb, Grid: topo}
	global := make([]float64, n*n)
	for i := range global {
		global[i] = float64(i % 17)
	}
	aP := blockcyclic.Distribute(global, l)
	bP := blockcyclic.Distribute(global, l)
	b.SetBytes(int64(2 * n * n * n)) // flops as bytes proxy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) error {
			ctx, err := blacs.New(c, topo)
			if err != nil {
				return err
			}
			out := make([]float64, len(aP[c.Rank()].Data))
			return apps.DistMatMul(ctx, l, aP[c.Rank()].Data, bP[c.Rank()].Data, out)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealFFT2D(b *testing.B) {
	const n = 64
	topo := grid.Row1D(4)
	l := blockcyclic.Layout{M: n, N: 2 * n, MB: 2, NB: 2 * n, Grid: topo}
	global := make([]float64, n*2*n)
	for i := range global {
		global[i] = float64(i % 13)
	}
	pieces := blockcyclic.Distribute(global, l)
	b.SetBytes(int64(n * n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) error {
			ctx, err := blacs.New(c, topo)
			if err != nil {
				return err
			}
			local := make([]float64, len(pieces[c.Rank()].Data))
			copy(local, pieces[c.Rank()].Data)
			return apps.FFT2D(ctx, l, local, false)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Runtime microbenchmarks ---------------------------------------------------

func BenchmarkMPIAllreduce8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := mpi.Run(8, func(c *mpi.Comm) error {
			xs := []float64{float64(c.Rank())}
			for k := 0; k < 10; k++ {
				c.Allreduce(xs, mpi.SumOp)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPISpawnMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := mpi.Run(2, func(c *mpi.Comm) error {
			ic := c.Spawn(2, func(child *mpi.Intercomm) error {
				m := child.Merge()
				m.Barrier()
				return nil
			})
			m := ic.Merge()
			m.Barrier()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealDistCG(b *testing.B) {
	const n, nb = 48, 4
	topo := grid.Topology{Rows: 2, Cols: 2}
	l := blockcyclic.Layout{M: n, N: n, MB: nb, NB: nb, Grid: topo}
	global := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			global[i*n+j] = 1.0 / (1.0 + float64((i-j)*(i-j)))
		}
		global[i*n+i] += float64(n)
	}
	pieces := blockcyclic.Distribute(global, l)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) error {
			ctx, err := blacs.New(c, topo)
			if err != nil {
				return err
			}
			x := make([]float64, n)
			_, err = apps.DistCG(ctx, l, pieces[c.Rank()].Data, rhs, x, 8)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerContact isolates the per-contact cost of the resize
// decision path — the loop every running job drives at every iteration.
// Tracing is off so the numbers reflect the decision machinery, and
// allocations are reported: the steady-state contact path (snapshot
// construction, queued-window views, policy decision) is required to stay
// at ~0 allocs/op. "steady" is the published single-job path on an idle
// queue; "steady-arbiter" routes the same contact through the default
// cluster-wide arbiter so the ClusterSnapshot path is measured;
// "backlog-arbiter" adds a wait-queue backlog so the queued-window cache
// and queue-pressure policy branches are on the hot path.
func BenchmarkSchedulerContact(b *testing.B) {
	submit := func(b *testing.B, core *scheduler.Core, need int, at float64) *scheduler.Job {
		job, _, err := core.Submit(scheduler.JobSpec{
			Name: "lu", App: "lu", ProblemSize: 12000, Iterations: 1 << 30,
			InitialTopo: grid.Topology{Rows: 3, Cols: need / 3},
			Chain:       experiments.Chain(12000),
		}, at)
		if err != nil {
			b.Fatal(err)
		}
		return job
	}
	contactLoop := func(b *testing.B, core *scheduler.Core, job *scheduler.Job) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Contact(job.ID, job.Topo, 50.0, 0, float64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("steady", func(b *testing.B) {
		core := scheduler.NewCore(50, true)
		core.DisableTrace()
		contactLoop(b, core, submit(b, core, 12, 0))
	})
	b.Run("steady-arbiter", func(b *testing.B) {
		core := scheduler.NewCore(50, true)
		core.DisableTrace()
		core.SetArbiter(scheduler.PolicyArbiter{})
		contactLoop(b, core, submit(b, core, 12, 0))
	})
	b.Run("backlog-arbiter", func(b *testing.B) {
		core := scheduler.NewCore(50, false) // no backfill: the backlog stays queued
		core.DisableTrace()
		core.SetArbiter(scheduler.PolicyArbiter{})
		job := submit(b, core, 12, 0)
		submit(b, core, 36, 0) // occupies the rest of the pool
		for i := 0; i < 30; i++ {
			submit(b, core, 36, 0) // backlog: waits behind the full pool
		}
		contactLoop(b, core, job)
	})
}
