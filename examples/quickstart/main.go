// Quickstart: a minimal resizable application on the public SDK
// (pkg/reshape), run under an in-process ReSHAPE scheduler that expands it
// across an idle pool. This is the README's quickstart program.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/scheduler"
	"repro/pkg/reshape"
)

// demo is a complete resizable application: Init registers one distributed
// matrix, Iterate factors a fresh copy of it (the paper's LU workload).
// Everything else — the iterate/log/resize loop, scheduler contacts, data
// redistribution, re-entry of newly spawned ranks — is reshape.Run's job.
type demo struct{}

func (demo) Init(rc *reshape.Context) error {
	a := rc.RegisterArray("A", 32, 32, 4, 4)
	rc.FillArray(a, func(i, j int) float64 {
		if i == j {
			return 32 + 1/float64(1+i)
		}
		return 1 / float64(1+abs(i-j))
	})
	return nil
}

func (demo) Iterate(rc *reshape.Context) error {
	a, _ := rc.Array("A")
	work := append([]float64(nil), a.Data...)
	return apps.DistLU(rc.Grid(), a.LayoutFor(rc.Topo()), work)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func main() {
	const procs = 8

	// The scheduler server owns the processor pool. Its JobStarter runs
	// each granted job through the SDK on a fresh set of ranks.
	var srv *scheduler.Server
	srv = scheduler.NewServer(procs, true, func(j *scheduler.Job) {
		_, err := reshape.Run(context.Background(), demo{},
			reshape.WithScheduler(srv),
			reshape.WithJobID(j.ID),
			reshape.WithTopology(j.Topo),
			reshape.WithMaxIterations(6),
			reshape.WithLogger(func(ev reshape.Event) {
				switch ev.Kind {
				case reshape.EventIterate:
					fmt.Printf("  iter %d on %-5v  %.4fs\n", ev.Iter, ev.Topo, ev.Seconds)
				case reshape.EventResize:
					fmt.Printf("  resized %v -> %v (%.4fs redistribution)\n", ev.From, ev.Topo, ev.Seconds)
				}
			}))
		if err != nil {
			log.Fatalf("job failed: %v", err)
		}
	})

	// Submit a 32x32 LU job starting on 1x2 processors; its configuration
	// chain allows growth up to the full pool. reshape.Submit works against
	// any scheduler transport; WithPriority orders the wait queue and feeds
	// cluster-wide arbitration.
	ctx := context.Background()
	start := grid.Topology{Rows: 1, Cols: 2}
	jobID, err := reshape.Submit(ctx, srv, scheduler.JobSpec{
		Name:        "quickstart-lu",
		App:         "lu",
		ProblemSize: 32,
		BlockSize:   4,
		Iterations:  6,
		InitialTopo: start,
		Chain:       grid.GrowthChain(start, 32, procs),
	}, reshape.WithPriority(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Wait(ctx, jobID); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nallocation history:")
	for _, e := range srv.Core().Events {
		fmt.Printf("  t=%7.3fs %-7s %-14s topo=%-5v busy=%d/%d\n",
			e.Time, e.Kind, e.Job, e.Topo, e.Busy, procs)
	}
	j, _ := srv.Core().Job(jobID)
	fmt.Println("\nconfigurations visited (the Performance Profiler's record):")
	for _, v := range j.Profile.Visits {
		fmt.Printf("  %-5v %2d iterations, last iteration %.4fs\n",
			v.Topo, len(v.IterTimes), v.Last())
	}
	fmt.Printf("\njob turnaround: %.3fs\n", j.EndTime-j.SubmitTime)
}
