// Quickstart: run one resizable LU job under an in-process ReSHAPE
// scheduler and watch it expand across an idle pool.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/scheduler"
)

func main() {
	const procs = 8

	// The scheduler server owns the processor pool. Its JobStarter launches
	// each granted job on a fresh set of ranks (goroutines).
	var srv *scheduler.Server
	srv = scheduler.NewServer(procs, true, func(j *scheduler.Job) {
		cfg := apps.Config{App: "lu", N: 32, NB: 4, Iterations: 6}
		if err := apps.Launch(srv, j.ID, j.Topo, cfg); err != nil {
			log.Fatalf("job failed: %v", err)
		}
	})

	// Submit a 32x32 LU job starting on 1x2 processors; its configuration
	// chain allows growth up to the full pool.
	ctx := context.Background()
	start := grid.Topology{Rows: 1, Cols: 2}
	jobID, err := srv.Submit(ctx, scheduler.JobSpec{
		Name:        "quickstart-lu",
		App:         "lu",
		ProblemSize: 32,
		BlockSize:   4,
		Iterations:  6,
		InitialTopo: start,
		Chain:       grid.GrowthChain(start, 32, procs),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Wait(ctx, jobID); err != nil {
		log.Fatal(err)
	}

	fmt.Println("allocation history:")
	for _, e := range srv.Core().Events {
		fmt.Printf("  t=%7.3fs %-7s %-14s topo=%-5v busy=%d/%d\n",
			e.Time, e.Kind, e.Job, e.Topo, e.Busy, procs)
	}
	j, _ := srv.Core().Job(jobID)
	fmt.Println("\nconfigurations visited (the Performance Profiler's record):")
	for _, v := range j.Profile.Visits {
		fmt.Printf("  %-5v %2d iterations, last iteration %.4fs\n",
			v.Topo, len(v.IterTimes), v.Last())
	}
	fmt.Printf("\njob turnaround: %.3fs\n", j.EndTime-j.SubmitTime)
}
