// Sweet-spot probing: reproduce Figure 3(a) — a lone LU factorization on
// n=12000 probes ever-larger processor configurations, detects that 16
// processors is worse than 12, shrinks back, and holds its sweet spot. The
// run uses the virtual-time simulator at full System X scale.
//
//	go run ./examples/sweetspot
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/perfmodel"
)

func main() {
	params := perfmodel.SystemX()
	iters, err := experiments.Fig3a(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LU factorization, n=12000, ReSHAPE on an idle 50-processor cluster")
	fmt.Printf("%-5s %-6s %-6s %12s %10s %14s\n",
		"iter", "procs", "topo", "iter time(s)", "ΔT(s)", "redistrib.(s)")
	prev := 0.0
	for _, r := range iters {
		delta := 0.0
		if prev != 0 {
			delta = prev - r.IterTime
		}
		fmt.Printf("%-5d %-6d %-6s %12.2f %10.2f %14.2f\n",
			r.Iter, r.Procs, r.Topo, r.IterTime, delta, r.RedistSec)
		prev = r.IterTime
	}

	fmt.Println("\npaper (Figure 3(a)): 2 -> 4 -> 6 -> 9 -> 12 -> 16 -> back to 12, held;")
	fmt.Println("the ΔT of the 12->16 row is negative, so the Remap Scheduler resizes back.")
}
