// Porting a custom application to ReSHAPE with the public SDK: a
// distributed power-iteration solver written against the App lifecycle.
// The pattern mirrors §3.2.3 of the paper — register the global arrays and
// replicated state in Init, do one outer iteration in Iterate — but the
// loop, resize points, redistribution and spawned-rank re-entry that the
// pre-SDK port hand-rolled in a worker closure now live in reshape.Run.
// The optional OnResize hook observes every topology change, including the
// moment a newly spawned rank joins.
//
//	go run ./examples/custom-app
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/scheduler"
	"repro/pkg/reshape"
)

const (
	n          = 24 // global matrix dimension
	nb         = 2  // block size
	iterations = 8
)

// power is the resizable application: a symmetric matrix A distributed
// block-cyclically and a replicated iterate vector x.
type power struct{}

func (power) Init(rc *reshape.Context) error {
	a := rc.RegisterArray("A", n, n, nb, nb)
	rc.FillArray(a, func(i, j int) float64 {
		v := 1.0 / (1.0 + math.Abs(float64(i-j)))
		if i == j {
			v += 2
		}
		return v
	})
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(n)
	}
	rc.RegisterReplicated("x", x)
	return nil
}

// Iterate performs one power step: y = A*x (distributed), normalize,
// x <- y. The eigenvalue estimate ||y|| is printed on rank 0.
func (power) Iterate(rc *reshape.Context) error {
	a, ok := rc.Array("A")
	if !ok {
		return fmt.Errorf("array A missing")
	}
	x := rc.Replicated("x")
	l := a.LayoutFor(rc.Topo())
	pr, pc := l.Coords(rc.Rank())
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)

	// Local partial products against the replicated vector.
	partial := make([]float64, n)
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			partial[gi] += a.Data[li*cols+lj] * x[gj]
		}
	}
	y := rc.Comm().Allreduce(partial, mpi.SumOp)
	norm := 0.0
	for _, v := range y {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for i := range y {
		x[i] = y[i] / norm
	}
	if rc.Rank() == 0 {
		fmt.Printf("  iter %d on %-5v  lambda=%.4f\n", rc.Iter()+1, rc.Topo(), norm)
	}
	return nil
}

// OnResize is the optional lifecycle hook: every rank is notified after a
// topology change, and spawned ranks get a Joined notification (their
// replicated x arrived through the resize library's bootstrap broadcast).
func (power) OnResize(rc *reshape.Context, ev reshape.ResizeEvent) error {
	if ev.Kind == reshape.Joined || rc.Rank() != 0 {
		return nil
	}
	fmt.Printf("  %s %v -> %v after iteration %d (%.4fs redistribution)\n",
		ev.Kind, ev.From, ev.To, ev.Iter, ev.Seconds)
	return nil
}

func main() {
	const procs = 6
	var srv *scheduler.Server
	srv = scheduler.NewServer(procs, true, func(j *scheduler.Job) {
		_, err := reshape.Run(context.Background(), power{},
			reshape.WithScheduler(srv),
			reshape.WithJobID(j.ID),
			reshape.WithTopology(j.Topo),
			reshape.WithMaxIterations(iterations))
		if err != nil {
			log.Fatalf("job failed: %v", err)
		}
	})

	ctx := context.Background()
	start := grid.Topology{Rows: 1, Cols: 2}
	jobID, err := srv.Submit(ctx, scheduler.JobSpec{
		Name: "power-iteration", App: "custom", ProblemSize: n, Iterations: iterations,
		InitialTopo: start,
		Chain:       grid.GrowthChain(start, n, procs),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power iteration on a %dx%d matrix, starting on %v of %d processors:\n",
		n, n, start, procs)
	if err := srv.Wait(ctx, jobID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done; every topology change redistributed A and re-replicated x.")
}
