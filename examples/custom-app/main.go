// Porting a custom application to ReSHAPE: a distributed power-iteration
// solver written directly against the resizing API. The pattern mirrors
// §3.2.3 of the paper — register the global arrays, keep replicated state
// in the session, and call Resize at the end of every outer iteration. The
// scheduler may grow or shrink the processor set between iterations; the
// worker function is re-entered by newly spawned ranks automatically.
//
//	go run ./examples/custom-app
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/resize"
	"repro/internal/scheduler"
)

const (
	n          = 24 // global matrix dimension
	nb         = 2  // block size
	iterations = 8
)

// powerIteration performs one outer iteration: y = A*x (distributed),
// normalize, x <- y. Returns the eigenvalue estimate ||y||.
func powerIteration(s *resize.Session) (float64, error) {
	a, ok := s.Array("A")
	if !ok {
		return 0, fmt.Errorf("array A missing")
	}
	x := s.Replicated("x")
	l := a.LayoutFor(s.Topo())
	rank := s.Comm().Rank()
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)

	// Local partial products against the replicated vector.
	partial := make([]float64, n)
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			partial[gi] += a.Data[li*cols+lj] * x[gj]
		}
	}
	y := s.Comm().Allreduce(partial, mpi.SumOp)
	norm := 0.0
	for _, v := range y {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for i := range y {
		x[i] = y[i] / norm
	}
	return norm, nil
}

// worker is the application body run by every rank, including ranks spawned
// during expansion.
func worker(s *resize.Session) error {
	for s.Iter() < iterations {
		t0 := time.Now()
		lambda, err := powerIteration(s)
		if err != nil {
			return err
		}
		elapsed := time.Since(t0).Seconds()
		if s.Comm().Rank() == 0 {
			fmt.Printf("  iter %d on %-5v  lambda=%.4f  (%.4fs)\n",
				s.Iter()+1, s.Topo(), lambda, elapsed)
		}
		s.Log(elapsed)
		status, err := s.Resize(elapsed)
		if err != nil {
			return err
		}
		if status == resize.Retired {
			return nil // this rank was shrunk away
		}
	}
	return s.Done()
}

func main() {
	const procs = 6
	var srv *scheduler.Server
	srv = scheduler.NewServer(procs, true, func(j *scheduler.Job) {
		world := mpi.NewWorld()
		err := world.Run(j.Topo.Count(), func(c *mpi.Comm) error {
			sess, err := resize.NewSession(srv, j.ID, c, j.Topo, worker)
			if err != nil {
				return err
			}
			// Register the global matrix and the replicated vector.
			a := &resize.Array{Name: "A", M: n, N: n, MB: nb, NB: nb}
			sess.RegisterArray(a)
			fill(sess, a)
			x := make([]float64, n)
			for i := range x {
				x[i] = 1 / math.Sqrt(n)
			}
			sess.SetReplicated("x", x)
			return worker(sess)
		})
		if err != nil {
			log.Fatalf("job failed: %v", err)
		}
	})

	ctx := context.Background()
	start := grid.Topology{Rows: 1, Cols: 2}
	jobID, err := srv.Submit(ctx, scheduler.JobSpec{
		Name: "power-iteration", App: "custom", ProblemSize: n, Iterations: iterations,
		InitialTopo: start,
		Chain:       grid.GrowthChain(start, n, procs),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power iteration on a %dx%d matrix, starting on %v of %d processors:\n",
		n, n, start, procs)
	if err := srv.Wait(ctx, jobID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done; every topology change redistributed A and re-replicated x.")
}

// fill populates the symmetric test matrix.
func fill(s *resize.Session, a *resize.Array) {
	l := a.LayoutFor(s.Topo())
	rank := s.Comm().Rank()
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)
	a.Data = make([]float64, rows*cols)
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			v := 1.0 / (1.0 + math.Abs(float64(gi-gj)))
			if gi == gj {
				v += 2
			}
			a.Data[li*cols+lj] = v
		}
	}
}
