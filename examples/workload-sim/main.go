// Workload simulation: regenerate the paper's headline result — the
// static-vs-dynamic comparison of workloads W1 and W2 (Figures 4-5, Tables
// 4-5) on a virtual 36-processor System X.
//
//	go run ./examples/workload-sim
//
// With -live, the same kind of job mix runs for real instead: the example
// starts an in-process reshaped daemon, submits a scaled-down mix over the
// rpc/v2 wire protocol (reshape client), and renders the allocation
// history live from the streaming Watch subscription — the v2 replacement
// for polling status or parking a connection per blocking wait.
//
//	go run ./examples/workload-sim -live
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/reshape"
	"repro/internal/rpc"
	"repro/internal/scheduler"
	"repro/internal/simcluster"
	"repro/internal/trace"
)

func main() {
	live := flag.Bool("live", false, "run a scaled-down mix on a real daemon over rpc/v2 instead of the virtual-time simulation")
	procs := flag.Int("procs", 8, "processor pool size for -live")
	flag.Parse()

	if *live {
		runLive(*procs)
		return
	}

	params := perfmodel.SystemX()

	w1, err := experiments.RunW1(params)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintTurnaroundTable(os.Stdout, "Table 4 (workload 1)", w1)

	fmt.Println("\nworkload 1 dynamic allocation history (Figure 4(a)):")
	for _, name := range []string{"LU", "MM", "Master-Worker", "Jacobi", "2D FFT"} {
		fmt.Printf("  %-14s", name)
		for _, pt := range simcluster.AllocSeries(w1.Dynamic.Events, name) {
			fmt.Printf(" (t=%.0fs, %0.f procs)", pt[0], pt[1])
		}
		fmt.Println()
	}
	fmt.Println("\nas a Gantt chart (glyph intensity = processors held):")
	fmt.Print(trace.Gantt(w1.Dynamic.Events, 72))

	fmt.Println()
	w2, err := experiments.RunW2(params)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintTurnaroundTable(os.Stdout, "Table 5 (workload 2)", w2)

	fmt.Printf("\npaper anchors: W1 utilization 39.7%% -> 70.7%%; ")
	fmt.Printf("this run: %.1f%% -> %.1f%%\n", 100*w1.StaticUtilization, 100*w1.DynamicUtilization)
}

// runLive drives a real scheduler daemon through the v2 wire protocol: the
// job mix below mirrors W1's shape (two dense solvers plus lighter 1-D
// jobs) at toy problem sizes, so it finishes in seconds on goroutine
// "processors" while exercising the full remote path — submit, resize
// contacts from the apps' own resize points, and the streaming watch.
func runLive(procs int) {
	// The starter closure runs on server goroutines once jobs are
	// submitted; the client is dialed only after the server is up, so it
	// is published through an atomic pointer.
	var clientp atomic.Pointer[reshape.Client]
	sched := scheduler.NewServer(procs, true, func(j *scheduler.Job) {
		client := clientp.Load()
		cfg := apps.Config{App: j.Spec.App, N: j.Spec.ProblemSize, NB: j.Spec.BlockSize, Iterations: j.Spec.Iterations}
		if cfg.NB <= 0 {
			cfg.NB = 2
		}
		// The launched ranks talk to the scheduler over the wire client,
		// exactly as they would against a remote daemon.
		if err := apps.Launch(client, j.ID, j.Topo, cfg); err != nil {
			log.Printf("job %d failed: %v", j.ID, err)
			_ = client.JobError(context.Background(), j.ID)
		}
	})
	srv, err := rpc.Serve("127.0.0.1:0", sched, rpc.WithLogf(log.Printf))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	client, err := reshape.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	clientp.Store(client)

	ctx := context.Background()
	sub, err := client.Watch(ctx, scheduler.AllJobs)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Cancel()
	events := make(chan struct{})
	go func() {
		defer close(events)
		for ev := range sub.C {
			fmt.Printf("  t=%7.3fs %-7s %-10s topo=%-6v busy=%d/%d\n",
				ev.Time, ev.Kind, ev.Job, ev.Topo, ev.Busy, ev.Busy+ev.Free)
		}
	}()

	start12 := grid.Topology{Rows: 1, Cols: 2}
	mix := []scheduler.JobSpec{
		{Name: "lu", App: "lu", ProblemSize: 24, BlockSize: 2, Iterations: 4,
			InitialTopo: start12, Chain: grid.GrowthChain(start12, 24, procs)},
		{Name: "mm", App: "mm", ProblemSize: 16, BlockSize: 2, Iterations: 4,
			InitialTopo: start12, Chain: grid.GrowthChain(start12, 16, procs)},
		{Name: "jacobi", App: "jacobi", ProblemSize: 32, Iterations: 4,
			InitialTopo: grid.Row1D(2), Chain: []grid.Topology{grid.Row1D(2), grid.Row1D(4)}},
	}
	fmt.Printf("live mix on %d processors over rpc/v2 (%s):\n", procs, srv.Addr())
	ids := make([]int, 0, len(mix))
	for _, spec := range mix {
		id, err := client.Submit(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := client.Wait(ctx, id); err != nil {
			log.Fatal(err)
		}
	}

	st, err := client.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	sub.Cancel()
	<-events
	fmt.Printf("\nfinal status: %d/%d processors free, %d jobs done; %d events dropped\n",
		st.Free, st.Total, len(st.Jobs), sub.Dropped())
	stats := srv.Stats()
	fmt.Printf("server stats: %d v2 conn(s), %d requests, %d watch(es), %d dials by client\n",
		stats.V2Conns, stats.Requests, stats.Watches, client.Dials())
}
