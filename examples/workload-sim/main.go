// Workload simulation: regenerate the paper's headline result — the
// static-vs-dynamic comparison of workloads W1 and W2 (Figures 4-5, Tables
// 4-5) on a virtual 36-processor System X.
//
//	go run ./examples/workload-sim
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/simcluster"
	"repro/internal/trace"
)

func main() {
	params := perfmodel.SystemX()

	w1, err := experiments.RunW1(params)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintTurnaroundTable(os.Stdout, "Table 4 (workload 1)", w1)

	fmt.Println("\nworkload 1 dynamic allocation history (Figure 4(a)):")
	for _, name := range []string{"LU", "MM", "Master-Worker", "Jacobi", "2D FFT"} {
		fmt.Printf("  %-14s", name)
		for _, pt := range simcluster.AllocSeries(w1.Dynamic.Events, name) {
			fmt.Printf(" (t=%.0fs, %0.f procs)", pt[0], pt[1])
		}
		fmt.Println()
	}
	fmt.Println("\nas a Gantt chart (glyph intensity = processors held):")
	fmt.Print(trace.Gantt(w1.Dynamic.Events, 72))

	fmt.Println()
	w2, err := experiments.RunW2(params)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintTurnaroundTable(os.Stdout, "Table 5 (workload 2)", w2)

	fmt.Printf("\npaper anchors: W1 utilization 39.7%% -> 70.7%%; ")
	fmt.Printf("this run: %.1f%% -> %.1f%%\n", 100*w1.StaticUtilization, 100*w1.DynamicUtilization)
}
