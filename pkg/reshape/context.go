package reshape

import (
	"repro/internal/blacs"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/resize"
)

// Context is a rank's handle on the running application: a thin adapter
// over the underlying resize.Session that carries the SDK's declarative
// state registry. One Context exists per rank; all of its methods are
// local to that rank unless noted collective.
type Context struct {
	s       *resize.Session
	run     *runner           // nil when wrapping a bare session (NewContext)
	states  []Redistributable // rank-local view of registered custom state
	resizes int               // topology changes this rank lived through
}

// NewContext wraps an existing resize.Session in an SDK Context. This is
// the bridge for code that still drives sessions directly (the legacy
// Worker path, differential tests): App methods can run against it, but
// lifecycle hooks, events and Redistributable plumbing are only provided
// by Run.
func NewContext(s *resize.Session) *Context { return &Context{s: s} }

// Session exposes the underlying resizing-library session — the advanced
// per-stage API (ContactScheduler, ExpandProcessors, ...) for code that
// needs the mechanism beneath the SDK.
func (rc *Context) Session() *resize.Session { return rc.s }

// Comm returns the rank's current communicator.
func (rc *Context) Comm() *mpi.Comm { return rc.s.Comm() }

// Grid returns the current 2-D process-grid context.
func (rc *Context) Grid() *blacs.Context { return rc.s.Ctx() }

// Topo returns the current processor topology.
func (rc *Context) Topo() grid.Topology { return rc.s.Topo() }

// Rank returns the caller's rank in the current communicator.
func (rc *Context) Rank() int { return rc.s.Comm().Rank() }

// Iter returns the number of completed outer iterations.
func (rc *Context) Iter() int { return rc.s.Iter() }

// JobID returns the scheduler's job id.
func (rc *Context) JobID() int { return rc.s.JobID() }

// LastRedist returns the redistribution cost of the most recent resize in
// seconds (0 if the last resize point made no change).
func (rc *Context) LastRedist() float64 { return rc.s.LastRedist() }

// RegisterArray declares a global M×N block-cyclic array with MB×NB blocks
// and adds it to the set redistributed at every resize. It returns the
// array handle whose Data field holds the rank's local piece (fill it with
// FillArray or by hand). Collective: all ranks must register the same
// arrays in the same order, normally from Init.
func (rc *Context) RegisterArray(name string, m, n, mb, nb int) *resize.Array {
	a := &resize.Array{Name: name, M: m, N: n, MB: mb, NB: nb}
	rc.s.RegisterArray(a)
	return a
}

// Array returns a registered array by name.
func (rc *Context) Array(name string) (*resize.Array, bool) { return rc.s.Array(name) }

// FillArray populates the rank's local piece of a registered array from a
// global-index function. Ranks outside the current grid hold no data and
// are left untouched.
func (rc *Context) FillArray(a *resize.Array, f func(i, j int) float64) {
	l := a.LayoutFor(rc.s.Topo())
	rank := rc.s.Comm().Rank()
	if rank >= l.Grid.Count() {
		return
	}
	pr, pc := l.Coords(rank)
	rows, cols := l.LocalRows(pr), l.LocalCols(pc)
	a.Data = make([]float64, rows*cols)
	for li := 0; li < rows; li++ {
		for lj := 0; lj < cols; lj++ {
			gi, gj := l.LocalToGlobal(pr, pc, li, lj)
			a.Data[li*cols+lj] = f(gi, gj)
		}
	}
}

// RegisterReplicated declares rank-replicated state (e.g. a solution
// vector) that every rank holds and that newly spawned ranks must receive.
// Rank 0's copy is authoritative at resize time and is re-broadcast to
// every rank during an expansion. Re-fetch with Replicated after a resize
// point rather than caching the slice across it.
func (rc *Context) RegisterReplicated(name string, data []float64) {
	rc.s.SetReplicated(name, data)
}

// SetReplicated updates (or creates) a replicated buffer; it is
// RegisterReplicated under the name the resizing library uses for updates.
func (rc *Context) SetReplicated(name string, data []float64) {
	rc.s.SetReplicated(name, data)
}

// Replicated returns a replicated buffer by name (nil if absent).
func (rc *Context) Replicated(name string) []float64 { return rc.s.Replicated(name) }

// RegisterState registers custom resizable state: its Register hook runs
// immediately (declare backing arrays/replicated buffers there), Pack runs
// before every resize point, and Unpack runs after each topology change
// and on newly spawned ranks. Collective: all ranks must register the same
// states in the same order, normally from Init.
func (rc *Context) RegisterState(st Redistributable) error {
	rc.states = append(rc.states, st)
	if rc.run != nil {
		rc.run.noteState(st, len(rc.states)-1)
	}
	return st.Register(rc)
}

// Log records an iteration time in the session's iteration log (averaged
// across the grid, recorded on rank 0) and returns the average. Run calls
// this automatically after every Iterate; it is exposed for legacy-path
// code driving sessions by hand.
func (rc *Context) Log(seconds float64) float64 { return rc.s.Log(seconds) }
