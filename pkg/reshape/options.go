package reshape

import (
	"time"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/resize"
)

// config collects the functional options of one Run.
type config struct {
	client      resize.Client
	jobID       int
	topo        grid.Topology
	maxIter     int
	resizeEvery int
	logger      Logger
	perf        *perfmodel.Params
	world       *mpi.World
	callTimeout time.Duration
	states      []Redistributable

	now func() time.Time // test hook for deterministic iteration timing
}

func defaultConfig() *config {
	return &config{
		client:      resize.NullClient{},
		topo:        grid.Topology{Rows: 1, Cols: 1},
		maxIter:     10, // the paper's per-job iteration count
		resizeEvery: 1,
		now:         time.Now,
	}
}

// Option configures Run.
type Option func(*config)

// WithScheduler connects the run to a scheduler through the resize.Client
// capability. The in-process scheduler.Server, the v1 rpc.Client and the
// rpc/v2 client (internal/reshape) all implement the full resize.Scheduler
// interface and are interchangeable here. Without this option the run uses
// resize.NullClient and never resizes (static execution).
func WithScheduler(c resize.Client) Option { return func(o *config) { o.client = c } }

// WithJobID sets the scheduler job id reported from resize points.
func WithJobID(id int) Option { return func(o *config) { o.jobID = id } }

// WithTopology sets the initial processor topology (default 1×1).
func WithTopology(t grid.Topology) Option { return func(o *config) { o.topo = t } }

// WithMaxIterations sets the number of outer iterations (default 10, the
// paper's per-job count).
func WithMaxIterations(n int) Option { return func(o *config) { o.maxIter = n } }

// WithResizeEvery places a resize point only every n-th iteration
// (default 1: every iteration, the paper's behavior). Intermediate
// iterations still log their times; they just skip the scheduler contact.
func WithResizeEvery(n int) Option { return func(o *config) { o.resizeEvery = n } }

// WithLogger streams typed lifecycle events to l. Most events are emitted
// by rank 0; EventRetire by each retiring rank, so l must tolerate
// concurrent calls.
func WithLogger(l Logger) Option { return func(o *config) { o.logger = l } }

// WithPerfModel refits p's redistribution-cost coefficients from the
// redistributions this run measures (Report.CalibratedObs says how many
// observations the fit used).
func WithPerfModel(p *perfmodel.Params) Option { return func(o *config) { o.perf = p } }

// WithWorld runs the application's ranks inside an existing mpi.World
// instead of a fresh one. Note that World.Run blocks until every rank in
// the world has finished — share a world only between runs meant to be
// joined.
func WithWorld(w *mpi.World) Option { return func(o *config) { o.world = w } }

// WithCallTimeout bounds each scheduler call made from resize points
// (0 = no deadline). Spawned ranks inherit it.
func WithCallTimeout(d time.Duration) Option { return func(o *config) { o.callTimeout = d } }

// WithState declaratively registers custom resizable state, equivalent to
// calling Context.RegisterState for each value at the end of Init.
func WithState(states ...Redistributable) Option {
	return func(o *config) { o.states = append(o.states, states...) }
}
