package reshape

import (
	"context"

	"repro/internal/resize"
	"repro/internal/scheduler"
)

// SubmitOption tweaks a job spec on its way to the scheduler.
type SubmitOption func(*scheduler.JobSpec)

// WithPriority sets the job's scheduler priority. Higher-priority jobs are
// placed ahead in the wait queue (FCFS among equals) and are favoured by
// cluster-wide arbitration; under the benefit-ranked arbiter waiting jobs
// age upward, so a low priority delays a job but cannot starve it. The
// default 0 reproduces plain FCFS.
func WithPriority(p int) SubmitOption {
	return func(s *scheduler.JobSpec) { s.Priority = p }
}

// WithTenant tags the job with a tenant identity for multi-tenant
// fair-share scheduling and per-tenant admission quotas. Under the
// fairshare arbiter the cluster's processors are split between tenants in
// proportion to their configured weights; the default empty tenant keeps
// single-tenant scheduling untouched. A tenant set on the spec wins over
// the submitting client's own identity (reshape.WithTenant on Dial).
func WithTenant(tenant string) SubmitOption {
	return func(s *scheduler.JobSpec) { s.Tenant = tenant }
}

// Submit enqueues a job on any scheduler transport — the in-process
// scheduler.Server, the v1 rpc.Client or the rpc/v2 client — and returns
// the job id to hand to Run via WithJobID. The priority travels inside the
// JobSpec across both wire protocols unchanged.
func Submit(ctx context.Context, s resize.Scheduler, spec scheduler.JobSpec, opts ...SubmitOption) (int, error) {
	for _, o := range opts {
		o(&spec)
	}
	return s.Submit(ctx, spec)
}
