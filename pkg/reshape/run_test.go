package reshape_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/grid"
	"repro/internal/resize"
	"repro/internal/scheduler"
	"repro/pkg/reshape"
)

func topo(r, c int) grid.Topology { return grid.Topology{Rows: r, Cols: c} }

// countingApp counts lifecycle calls across all ranks.
type countingApp struct {
	inits       atomic.Int64
	iterates    atomic.Int64
	checkpoints atomic.Int64
	resizes     atomic.Int64
	joins       atomic.Int64
}

func (a *countingApp) Init(rc *reshape.Context) error {
	a.inits.Add(1)
	arr := rc.RegisterArray("A", 8, 8, 2, 2)
	rc.FillArray(arr, func(i, j int) float64 { return float64(i*8 + j) })
	return nil
}

func (a *countingApp) Iterate(rc *reshape.Context) error {
	a.iterates.Add(1)
	return nil
}

func (a *countingApp) Checkpoint(rc *reshape.Context) error {
	a.checkpoints.Add(1)
	return nil
}

func (a *countingApp) OnResize(rc *reshape.Context, ev reshape.ResizeEvent) error {
	if ev.Kind == reshape.Joined {
		a.joins.Add(1)
	} else {
		a.resizes.Add(1)
	}
	return nil
}

func TestRunIterationAccounting(t *testing.T) {
	// The loopWorker-equivalent accounting: n iterations on p ranks means
	// exactly n*p Iterate calls, n log records with increasing iteration
	// numbers, and one scheduler contact per iteration.
	app := &countingApp{}
	client := &resize.ScriptedClient{}
	const iters = 5
	rep, err := reshape.Run(context.Background(), app,
		reshape.WithScheduler(client),
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(iters))
	if err != nil {
		t.Fatal(err)
	}
	if got := app.inits.Load(); got != 2 {
		t.Errorf("Init ran %d times, want 2 (once per initial rank)", got)
	}
	if got := app.iterates.Load(); got != iters*2 {
		t.Errorf("Iterate ran %d times, want %d", got, iters*2)
	}
	if rep.Iterations != iters {
		t.Errorf("report iterations %d, want %d", rep.Iterations, iters)
	}
	if len(rep.Records) != iters {
		t.Fatalf("%d records, want %d", len(rep.Records), iters)
	}
	for i, rec := range rep.Records {
		if rec.Iter != i {
			t.Errorf("record %d has iteration %d", i, rec.Iter)
		}
		if rec.Topo != topo(1, 2) {
			t.Errorf("record %d on %v", i, rec.Topo)
		}
	}
	if client.Contacts != iters {
		t.Errorf("%d scheduler contacts, want %d", client.Contacts, iters)
	}
	if !client.Ended {
		t.Error("completion never reported")
	}
	// Checkpoint fires at every resize point (resizeEvery=1 -> n times per rank).
	if got := app.checkpoints.Load(); got != iters*2 {
		t.Errorf("Checkpoint ran %d times, want %d", got, iters*2)
	}
}

func TestRunResizeEverySpacing(t *testing.T) {
	// With WithResizeEvery(2) only every 2nd iteration contacts the
	// scheduler; intermediate iterations still count and log.
	app := &countingApp{}
	client := &resize.ScriptedClient{}
	rep, err := reshape.Run(context.Background(), app,
		reshape.WithScheduler(client),
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(6),
		reshape.WithResizeEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	if client.Contacts != 3 {
		t.Errorf("%d contacts with resizeEvery=2 over 6 iterations, want 3", client.Contacts)
	}
	if rep.Iterations != 6 || len(rep.Records) != 6 {
		t.Errorf("iterations %d, records %d, want 6/6", rep.Iterations, len(rep.Records))
	}
	if got := app.checkpoints.Load(); got != 3*2 {
		t.Errorf("Checkpoint ran %d times, want 6 (3 resize points x 2 ranks)", got)
	}
}

func TestRunFlushesTailIterations(t *testing.T) {
	// When MaxIterations is not a multiple of ResizeEvery, the iterations
	// after the last resize point must still be flushed (Checkpoint/Pack)
	// before the run completes, so Report snapshots the final state.
	app := &countingApp{}
	client := &resize.ScriptedClient{}
	_, err := reshape.Run(context.Background(), app,
		reshape.WithScheduler(client),
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(5),
		reshape.WithResizeEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	if client.Contacts != 2 {
		t.Errorf("%d contacts, want 2 (iterations 2 and 4)", client.Contacts)
	}
	// 2 resize points + 1 final flush, per rank.
	if got := app.checkpoints.Load(); got != 3*2 {
		t.Errorf("Checkpoint ran %d times, want 6 (2 resize points + tail flush, x 2 ranks)", got)
	}
}

func TestRunHooksThroughResize(t *testing.T) {
	// An expansion must notify OnResize on every pre-existing rank and give
	// spawned ranks their Joined notification; a shrink notifies survivors.
	app := &countingApp{}
	client := &resize.ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
		{Action: scheduler.ActionNone},
		{Action: scheduler.ActionShrink, Target: topo(1, 2)},
	}}
	rep, err := reshape.Run(context.Background(), app,
		reshape.WithScheduler(client),
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := app.joins.Load(); got != 2 {
		t.Errorf("%d Joined notifications, want 2 (spawned ranks)", got)
	}
	// Expansion: 2 old ranks notified. Shrink to 1x2: 2 survivors notified.
	if got := app.resizes.Load(); got != 4 {
		t.Errorf("%d OnResize notifications, want 4 (2 expand + 2 shrink)", got)
	}
	if rep.Resizes != 2 {
		t.Errorf("report counted %d resizes, want 2", rep.Resizes)
	}
	if rep.FinalTopo != topo(1, 2) {
		t.Errorf("final topo %v", rep.FinalTopo)
	}
}

func TestRunLifecycleEvents(t *testing.T) {
	app := &countingApp{}
	client := &resize.ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
	}}
	var mu sync.Mutex
	var events []reshape.Event
	_, err := reshape.Run(context.Background(), app,
		reshape.WithScheduler(client),
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(3),
		reshape.WithLogger(func(ev reshape.Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[reshape.EventKind]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	if counts[reshape.EventInit] != 1 {
		t.Errorf("init events: %d, want 1", counts[reshape.EventInit])
	}
	if counts[reshape.EventIterate] != 3 {
		t.Errorf("iterate events: %d, want 3", counts[reshape.EventIterate])
	}
	if counts[reshape.EventResize] != 1 {
		t.Errorf("resize events: %d, want 1", counts[reshape.EventResize])
	}
	if counts[reshape.EventDone] != 1 {
		t.Errorf("done events: %d, want 1", counts[reshape.EventDone])
	}
	// The resize event carries the grid pair.
	for _, ev := range events {
		if ev.Kind == reshape.EventResize {
			if ev.From != topo(1, 2) || ev.Topo != topo(2, 2) {
				t.Errorf("resize event %v -> %v, want 1x2 -> 2x2", ev.From, ev.Topo)
			}
		}
	}
	if reshape.EventResize.String() != "resize" || reshape.Joined.String() != "joined" {
		t.Error("event kind names wrong")
	}
}

// windowState is custom Redistributable state: a live scalar ("window
// average") whose backing store is a replicated buffer. Pack flushes the
// live value before resize points; Unpack rebuilds it after topology
// changes and on joined ranks.
type windowState struct {
	mu        sync.Mutex
	live      map[*reshape.Context]float64 // per-rank live value (keyed by rank context)
	packs     atomic.Int64
	unpacks   atomic.Int64
	registers atomic.Int64
}

func newWindowState() *windowState {
	return &windowState{live: map[*reshape.Context]float64{}}
}

func (w *windowState) Register(rc *reshape.Context) error {
	w.registers.Add(1)
	rc.RegisterReplicated("window", []float64{1})
	w.set(rc, 1)
	return nil
}

func (w *windowState) Pack(rc *reshape.Context) error {
	w.packs.Add(1)
	rc.SetReplicated("window", []float64{w.get(rc)})
	return nil
}

func (w *windowState) Unpack(rc *reshape.Context) error {
	w.unpacks.Add(1)
	v := rc.Replicated("window")
	if len(v) != 1 {
		return fmt.Errorf("window backing store missing")
	}
	w.set(rc, v[0])
	return nil
}

func (w *windowState) set(rc *reshape.Context, v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.live[rc] = v
}

func (w *windowState) get(rc *reshape.Context) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.live[rc]
}

// windowApp doubles the live value every iteration.
type windowApp struct{ st *windowState }

func (a windowApp) Init(rc *reshape.Context) error {
	arr := rc.RegisterArray("A", 8, 8, 2, 2)
	rc.FillArray(arr, func(i, j int) float64 { return 1 })
	return nil
}

func (a windowApp) Iterate(rc *reshape.Context) error {
	a.st.set(rc, a.st.get(rc)*2)
	return nil
}

func TestRunRedistributableState(t *testing.T) {
	st := newWindowState()
	client := &resize.ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
	}}
	rep, err := reshape.Run(context.Background(), windowApp{st: st},
		reshape.WithScheduler(client),
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(3),
		reshape.WithState(st))
	if err != nil {
		t.Fatal(err)
	}
	if got := st.registers.Load(); got != 2 {
		t.Errorf("Register ran %d times, want 2 (initial ranks)", got)
	}
	// Joined ranks and post-expansion survivors all unpack.
	if st.unpacks.Load() == 0 {
		t.Error("Unpack never ran")
	}
	if st.packs.Load() == 0 {
		t.Error("Pack never ran")
	}
	// The live value doubled once before the expansion (packed as 2) and
	// twice after on every rank; the final replicated window is rank 0's
	// packed value from the last resize point: 1*2*2*2 = 8.
	if v := rep.Replicated["window"]; len(v) != 1 || v[0] != 8 {
		t.Errorf("final window %v, want [8]", v)
	}
}

// sliceState is a value-type Redistributable holding a slice: it is not
// comparable, so it exercises the positional deduplication of the runner's
// shared state registry (interface values like this would panic as map
// keys).
type sliceState struct{ seed []float64 }

func (s sliceState) Register(rc *reshape.Context) error {
	rc.RegisterReplicated("seed", append([]float64(nil), s.seed...))
	return nil
}
func (s sliceState) Pack(rc *reshape.Context) error   { return nil }
func (s sliceState) Unpack(rc *reshape.Context) error { return nil }

func TestRunNonComparableRedistributable(t *testing.T) {
	client := &resize.ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
	}}
	rep, err := reshape.Run(context.Background(), &countingApp{},
		reshape.WithScheduler(client),
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(3),
		reshape.WithState(sliceState{seed: []float64{3}}))
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Replicated["seed"]; len(v) != 1 || v[0] != 3 {
		t.Errorf("seed state %v, want [3]", v)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	app := &countingApp{}
	var once sync.Once
	_, err := reshape.Run(ctx, app,
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(1000),
		reshape.WithLogger(func(ev reshape.Event) {
			if ev.Kind == reshape.EventIterate && ev.Iter >= 2 {
				once.Do(cancel)
			}
		}))
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if got := app.iterates.Load(); got >= 2000 {
		t.Errorf("run did not stop early: %d iterates", got)
	}
}

func TestRunValidatesOptions(t *testing.T) {
	app := &countingApp{}
	if _, err := reshape.Run(context.Background(), nil); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := reshape.Run(context.Background(), app, reshape.WithMaxIterations(0)); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := reshape.Run(context.Background(), app, reshape.WithResizeEvery(0)); err == nil {
		t.Error("zero resize spacing accepted")
	}
	if _, err := reshape.Run(context.Background(), app, reshape.WithTopology(grid.Topology{})); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestRunCountsResizesWithoutArrays(t *testing.T) {
	// An app registering no arrays (like the master-worker workload) still
	// resizes: topology changes must be counted from the loop, not derived
	// from redistribution observations (empty here).
	client := &resize.ScriptedClient{Script: []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: topo(2, 2)},
		{Action: scheduler.ActionShrink, Target: topo(1, 2)},
	}}
	rep, err := reshape.Run(context.Background(), noopApp{},
		reshape.WithScheduler(client),
		reshape.WithTopology(topo(1, 2)),
		reshape.WithMaxIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resizes != 2 {
		t.Errorf("report counted %d resizes, want 2 (no arrays registered)", rep.Resizes)
	}
	if len(client.Completed) != 2 {
		t.Errorf("%d completed resizes at the scheduler, want 2", len(client.Completed))
	}
	if rep.FinalTopo != topo(1, 2) {
		t.Errorf("final topo %v", rep.FinalTopo)
	}
}

func TestRunDefaultsToStaticNullClient(t *testing.T) {
	// Without WithScheduler the app runs statically: default 10 iterations
	// on the default 1x1 topology, never resizing.
	app := &countingApp{}
	rep, err := reshape.Run(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 10 || rep.FinalTopo != topo(1, 1) || rep.Resizes != 0 {
		t.Errorf("defaults: %d iterations on %v with %d resizes", rep.Iterations, rep.FinalTopo, rep.Resizes)
	}
}
