package reshape

import (
	"repro/internal/grid"
)

// App is the lifecycle of a resizable application. Run calls Init exactly
// once per initial rank (register distributed state there), then Iterate
// once per outer iteration on every rank — including ranks spawned by a
// later expansion, which skip Init and join the loop at the current
// iteration count.
//
// The same App value serves all ranks concurrently: methods must be
// goroutine-safe, and rank-local state belongs in the Context (registered
// arrays, replicated buffers), not in App fields.
type App interface {
	// Init registers the application's distributed state and prepares its
	// initial contents. Collective over the initial ranks.
	Init(rc *Context) error
	// Iterate performs one outer iteration. Collective over the current
	// ranks.
	Iterate(rc *Context) error
}

// ResizeHandler is an optional App hook: OnResize runs on every rank after
// a completed topology change, and — with Joined set — on a newly spawned
// rank before its first Iterate. Use it to rebuild rank-local views
// (communicator-derived caches, local index maps) that registered state
// alone cannot restore.
type ResizeHandler interface {
	OnResize(rc *Context, ev ResizeEvent) error
}

// Checkpointer is an optional App hook: Checkpoint runs on every rank at
// each resize point, immediately before the scheduler is contacted, so the
// application can flush live state into its registered arrays/replicated
// buffers (the state that survives a resize).
type Checkpointer interface {
	Checkpoint(rc *Context) error
}

// Redistributable is custom application state that participates in
// resizing without being a plain dense array. Register declares the
// backing storage (arrays and replicated buffers on the Context) once per
// initial rank; Pack flattens live state into that storage before every
// resize point; Unpack rebuilds live state from the (redistributed)
// storage after a topology change, and on ranks that just spawned.
//
// Register implementations with Context.RegisterState during Init, or
// declaratively with the WithState option. Like Apps, a Redistributable
// value is shared by all ranks.
type Redistributable interface {
	Register(rc *Context) error
	Pack(rc *Context) error
	Unpack(rc *Context) error
}

// EventKind labels a lifecycle Event.
type EventKind int

const (
	// EventInit: Init completed on the initial ranks.
	EventInit EventKind = iota
	// EventIterate: one outer iteration completed; Seconds holds the
	// grid-averaged iteration time.
	EventIterate
	// EventResize: a topology change completed; From/To hold the old and
	// new grids and Seconds the measured redistribution cost.
	EventResize
	// EventRetire: this rank was shrunk away and is leaving the
	// computation (emitted on the retiring rank).
	EventRetire
	// EventDone: the application finished all iterations.
	EventDone
)

// String returns the kind's lowercase name.
func (k EventKind) String() string {
	switch k {
	case EventInit:
		return "init"
	case EventIterate:
		return "iterate"
	case EventResize:
		return "resize"
	case EventRetire:
		return "retire"
	case EventDone:
		return "done"
	}
	return "unknown"
}

// Event is one typed lifecycle notification delivered to the Logger.
// Every kind carries Iter as the completed-iteration count at emission
// time (EventIterate{Iter: 3} means the third iteration just finished)
// and the current topology; resize events additionally carry the previous
// topology.
type Event struct {
	Kind    EventKind
	Iter    int
	Topo    grid.Topology
	From    grid.Topology // EventResize only: the previous topology
	Seconds float64       // EventIterate: avg iteration time; EventResize: redistribution cost
	Rank    int           // rank that emitted the event
}

// Logger receives lifecycle events. Most events are emitted by rank 0
// only; EventRetire is emitted by each retiring rank, so a Logger must be
// safe for concurrent calls.
type Logger func(Event)

// ResizeKind says how a rank experienced a topology change.
type ResizeKind int

const (
	// Expanded: the processor set grew; this rank was already part of it.
	Expanded ResizeKind = iota
	// Shrunk: the processor set shrank; this rank survived.
	Shrunk
	// Joined: this rank was just spawned by an expansion and is entering
	// the loop (its first OnResize; From is the zero topology because the
	// rank did not exist under the previous one).
	Joined
)

// String returns the kind's lowercase name.
func (k ResizeKind) String() string {
	switch k {
	case Expanded:
		return "expanded"
	case Shrunk:
		return "shrunk"
	case Joined:
		return "joined"
	}
	return "unknown"
}

// ResizeEvent is the argument to the optional OnResize hook.
type ResizeEvent struct {
	Kind     ResizeKind
	From, To grid.Topology
	Seconds  float64 // measured redistribution cost (0 for Joined ranks)
	Iter     int     // completed iterations at the time of the change
}
