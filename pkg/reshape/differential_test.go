package reshape_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/resize"
	"repro/internal/scheduler"
	"repro/pkg/reshape"
)

// legacyOutcome is what the pre-SDK worker path produced for one job.
type legacyOutcome struct {
	records    []resize.IterationRecord
	finalTopo  grid.Topology
	iterations int
	replicated map[string][]float64
	contacts   int
	completed  int
	ended      bool
}

// legacyLoopWorker replicates the seed's hand-rolled application loop —
// the `loopWorker` boilerplate every app used to duplicate — driving the
// same App's Iterate through a bare-session Context. It is the reference
// the SDK's Run loop is pinned against.
func legacyLoopWorker(app reshape.App, iterations int) resize.Worker {
	return func(s *resize.Session) error {
		rc := reshape.NewContext(s)
		for s.Iter() < iterations {
			t0 := time.Now()
			if err := app.Iterate(rc); err != nil {
				return err
			}
			elapsed := time.Since(t0).Seconds()
			s.Log(elapsed)
			st, err := s.Resize(elapsed)
			if err != nil {
				return err
			}
			if st == resize.Retired {
				return nil
			}
		}
		return s.Done()
	}
}

// runLegacy executes an app the pre-SDK way: explicit world, session and
// worker closure.
func runLegacy(t *testing.T, app reshape.App, iterations int, start grid.Topology, script []scheduler.Decision) legacyOutcome {
	t.Helper()
	client := &resize.ScriptedClient{Script: script}
	worker := legacyLoopWorker(app, iterations)
	var mu sync.Mutex
	var out legacyOutcome
	err := mpi.Run(start.Count(), func(c *mpi.Comm) error {
		s, err := resize.NewSession(client, 1, c, start, worker)
		if err != nil {
			return err
		}
		if err := app.Init(reshape.NewContext(s)); err != nil {
			return err
		}
		if err := worker(s); err != nil {
			return err
		}
		if s.Comm().Rank() == 0 {
			mu.Lock()
			out.records = append([]resize.IterationRecord{}, s.LogRecords()...)
			out.finalTopo = s.Topo()
			out.iterations = s.Iter()
			out.replicated = map[string][]float64{}
			for _, name := range s.ReplicatedNames() {
				out.replicated[name] = append([]float64{}, s.Replicated(name)...)
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("legacy path: %v", err)
	}
	out.contacts = client.Contacts
	out.completed = len(client.Completed)
	out.ended = client.Ended
	return out
}

// diffCase pins both paths for one app through an expand/hold/shrink
// trajectory and asserts identical iteration records and resize outcomes.
func diffCase(t *testing.T, cfg apps.Config, start, bigger grid.Topology) {
	t.Helper()
	script := []scheduler.Decision{
		{Action: scheduler.ActionExpand, Target: bigger},
		{Action: scheduler.ActionNone},
		{Action: scheduler.ActionShrink, Target: start},
	}

	oldApp, err := apps.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	old := runLegacy(t, oldApp, cfg.Iterations, start, script)

	newApp, err := apps.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client := &resize.ScriptedClient{Script: script}
	rep, err := reshape.Run(context.Background(), newApp,
		reshape.WithScheduler(client),
		reshape.WithJobID(1),
		reshape.WithTopology(start),
		reshape.WithMaxIterations(cfg.Iterations))
	if err != nil {
		t.Fatalf("SDK path: %v", err)
	}

	// Same iteration records: one per iteration, same iteration numbers on
	// the same topologies (times are wall-clock and excluded).
	if len(rep.Records) != len(old.records) {
		t.Fatalf("records: SDK %d, legacy %d", len(rep.Records), len(old.records))
	}
	for i := range old.records {
		if rep.Records[i].Iter != old.records[i].Iter || rep.Records[i].Topo != old.records[i].Topo {
			t.Errorf("record %d: SDK (iter %d on %v), legacy (iter %d on %v)", i,
				rep.Records[i].Iter, rep.Records[i].Topo, old.records[i].Iter, old.records[i].Topo)
		}
	}
	// Same resize outcomes: contacts, completed resizes, completion signal,
	// final topology and iteration count.
	if client.Contacts != old.contacts {
		t.Errorf("contacts: SDK %d, legacy %d", client.Contacts, old.contacts)
	}
	if len(client.Completed) != old.completed {
		t.Errorf("completed resizes: SDK %d, legacy %d", len(client.Completed), old.completed)
	}
	if client.Ended != old.ended {
		t.Errorf("ended: SDK %v, legacy %v", client.Ended, old.ended)
	}
	if rep.FinalTopo != old.finalTopo {
		t.Errorf("final topo: SDK %v, legacy %v", rep.FinalTopo, old.finalTopo)
	}
	if rep.Iterations != old.iterations {
		t.Errorf("iterations: SDK %d, legacy %d", rep.Iterations, old.iterations)
	}
	// Identical replicated results: both paths performed the same arithmetic
	// on the same topologies, so solutions must match bit for bit.
	if len(rep.Replicated) != len(old.replicated) {
		t.Fatalf("replicated sets differ: SDK %v, legacy %v", keys(rep.Replicated), keys(old.replicated))
	}
	for name, want := range old.replicated {
		got := rep.Replicated[name]
		if len(got) != len(want) {
			t.Errorf("replicated %q: SDK %d values, legacy %d", name, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("replicated %q[%d]: SDK %v, legacy %v", name, i, got[i], want[i])
				break
			}
		}
	}
}

func keys(m map[string][]float64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDifferentialLU(t *testing.T) {
	diffCase(t, apps.Config{App: "lu", N: 12, NB: 2, Iterations: 5},
		grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 2})
}

func TestDifferentialJacobi(t *testing.T) {
	diffCase(t, apps.Config{App: "jacobi", N: 12, NB: 2, Iterations: 6, Sweeps: 5},
		grid.Row1D(2), grid.Row1D(4))
}

func TestDifferentialCG(t *testing.T) {
	diffCase(t, apps.Config{App: "cg", N: 12, NB: 2, Iterations: 5, Sweeps: 3},
		grid.Topology{Rows: 1, Cols: 2}, grid.Topology{Rows: 2, Cols: 3})
}

func TestDifferentialMW(t *testing.T) {
	diffCase(t, apps.Config{App: "mw", Iterations: 4, MWUnits: 30, MWChunk: 5, MWUnitWork: 10},
		grid.Row1D(2), grid.Row1D(4))
}

// TestDifferentialRetirePath pins the shrink-retire trajectory: ranks
// shrunk away must leave both loops identically (no Done from retired
// ranks, one completion signal overall).
func TestDifferentialRetire(t *testing.T) {
	cfg := apps.Config{App: "fft", N: 8, NB: 2, Iterations: 4}
	start := grid.Row1D(4)
	script := []scheduler.Decision{
		{Action: scheduler.ActionShrink, Target: grid.Row1D(2)},
		{Action: scheduler.ActionNone},
	}
	oldApp, err := apps.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	old := runLegacy(t, oldApp, cfg.Iterations, start, script)

	newApp, err := apps.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client := &resize.ScriptedClient{Script: script}
	rep, err := reshape.Run(context.Background(), newApp,
		reshape.WithScheduler(client),
		reshape.WithTopology(start),
		reshape.WithMaxIterations(cfg.Iterations))
	if err != nil {
		t.Fatal(err)
	}
	if client.Contacts != old.contacts || client.Ended != old.ended {
		t.Errorf("retire outcomes differ: SDK (%d contacts, ended %v), legacy (%d, %v)",
			client.Contacts, client.Ended, old.contacts, old.ended)
	}
	if rep.FinalTopo != old.finalTopo {
		t.Errorf("final topo: SDK %v, legacy %v", rep.FinalTopo, old.finalTopo)
	}
	if fmt.Sprint(rep.FinalTopo) != fmt.Sprint(grid.Row1D(2)) {
		t.Errorf("job did not shrink to 1x2: %v", rep.FinalTopo)
	}
}
