package reshape_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/resize"
	"repro/pkg/reshape"
)

type noopApp struct{}

func (noopApp) Init(rc *reshape.Context) error    { return nil }
func (noopApp) Iterate(rc *reshape.Context) error { return nil }

// BenchmarkRunOverhead measures the SDK's per-iteration cost against the
// hand-rolled worker loop it replaced: a no-op app on one rank with a null
// scheduler, so everything timed is loop machinery (timing, logging,
// resize-point bookkeeping, the scheduler contact). ns/op is the cost of
// one outer iteration. Numbers are recorded in DESIGN.md's SDK section.
func BenchmarkRunOverhead(b *testing.B) {
	b.Run("app", func(b *testing.B) {
		if _, err := reshape.Run(context.Background(), noopApp{},
			reshape.WithMaxIterations(b.N)); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("worker", func(b *testing.B) {
		err := mpi.Run(1, func(c *mpi.Comm) error {
			s, err := resize.NewSession(resize.NullClient{}, 0, c, grid.Topology{Rows: 1, Cols: 1}, nil)
			if err != nil {
				return err
			}
			for s.Iter() < b.N {
				t0 := time.Now()
				elapsed := time.Since(t0).Seconds()
				s.Log(elapsed)
				st, err := s.Resize(elapsed)
				if err != nil {
					return err
				}
				if st == resize.Retired {
					return nil
				}
			}
			return s.Done()
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}
