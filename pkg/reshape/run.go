package reshape

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/resize"
)

// Report is what Run returns once every rank has finished: rank 0's view
// of the completed execution.
type Report struct {
	// Records is the iteration log: one entry per outer iteration with the
	// topology it ran on and the grid-averaged time.
	Records []resize.IterationRecord
	// Iterations is the number of completed outer iterations.
	Iterations int
	// FinalTopo is the topology the application finished on.
	FinalTopo grid.Topology
	// Resizes counts completed topology changes.
	Resizes int
	// Replicated snapshots rank 0's replicated buffers at completion.
	Replicated map[string][]float64
	// RedistObservations are the measured redistribution costs (rank 0's
	// record), ready for perfmodel calibration.
	RedistObservations []perfmodel.RedistObservation
	// CalibratedObs is the number of observations WithPerfModel's refit
	// used (0 without that option).
	CalibratedObs int
}

// Run executes app on a fresh set of ranks and blocks until the job —
// including every rank spawned by expansions — has finished. It drives
// the full resizable-application lifecycle the paper describes: Init on
// the initial ranks, then per iteration Iterate → log → resize point,
// where the scheduler may expand the processor set (spawning ranks that
// enter Iterate at the current count), shrink it (retiring ranks), or
// leave it alone. ctx cancellation stops the loop at the next iteration
// boundary on every rank collectively.
//
// The returned Report is rank 0's record of the run. Run returns an error
// if any rank's lifecycle method or the resizing machinery failed.
func Run(ctx context.Context, app App, opts ...Option) (*Report, error) {
	if app == nil {
		return nil, fmt.Errorf("reshape: Run needs an App")
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(cfg)
	}
	if cfg.topo.Count() <= 0 {
		return nil, fmt.Errorf("reshape: topology %v has no processors", cfg.topo)
	}
	if cfg.maxIter <= 0 {
		return nil, fmt.Errorf("reshape: MaxIterations must be positive, got %d", cfg.maxIter)
	}
	if cfg.resizeEvery <= 0 {
		return nil, fmt.Errorf("reshape: ResizeEvery must be positive, got %d", cfg.resizeEvery)
	}

	r := &runner{app: app, cfg: cfg, ctx: ctx}
	world := cfg.world
	if world == nil {
		world = mpi.NewWorld()
	}

	var mu sync.Mutex
	var rep *Report
	err := world.Run(cfg.topo.Count(), func(c *mpi.Comm) error {
		s, err := resize.NewSession(cfg.client, cfg.jobID, c, cfg.topo, r.worker())
		if err != nil {
			return fmt.Errorf("reshape: session: %w", err)
		}
		s.CallTimeout = cfg.callTimeout
		rc := &Context{s: s, run: r}
		if err := app.Init(rc); err != nil {
			return fmt.Errorf("reshape: init: %w", err)
		}
		for _, st := range cfg.states {
			if err := rc.RegisterState(st); err != nil {
				return fmt.Errorf("reshape: register state: %w", err)
			}
		}
		if c.Rank() == 0 {
			r.emit(Event{Kind: EventInit, Topo: s.Topo()})
		}
		if err := r.loop(rc); err != nil {
			return err
		}
		// Original rank 0 survives every expansion (parents precede
		// children in the merged communicator) and every shrink (survivor
		// prefix), so its session holds the authoritative record.
		if s.Comm().Rank() == 0 {
			mu.Lock()
			rep = report(s, rc.resizes)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, fmt.Errorf("reshape: run finished without a rank-0 report")
	}
	if cfg.perf != nil {
		rep.CalibratedObs = cfg.perf.CalibrateRedist(rep.RedistObservations)
	}
	return rep, nil
}

// report snapshots rank 0's session into a Report. resizes is the
// topology-change count rank 0's loop witnessed — it cannot be derived
// from the redistribution observations, which stay empty for applications
// with no registered arrays.
func report(s *resize.Session, resizes int) *Report {
	rep := &Report{
		Records:            append([]resize.IterationRecord{}, s.LogRecords()...),
		Iterations:         s.Iter(),
		FinalTopo:          s.Topo(),
		Resizes:            resizes,
		Replicated:         map[string][]float64{},
		RedistObservations: append([]perfmodel.RedistObservation{}, s.RedistObservations()...),
	}
	for _, name := range s.ReplicatedNames() {
		v := s.Replicated(name)
		cp := make([]float64, len(v))
		copy(cp, v)
		rep.Replicated[name] = cp
	}
	return rep
}

// runner drives one Run: the shared configuration, the custom-state
// registry (shared so spawned ranks can rebuild their Context), and the
// cancellation context.
type runner struct {
	app App
	cfg *config
	//lint:allow ctxfirst per-Run closure object: the stored ctx is Run's own argument, shared across rank goroutines for collective cancellation
	ctx context.Context

	mu     sync.Mutex
	states []Redistributable // registration order of first-registering rank
}

// noteState records a Redistributable in the shared registry. Every rank
// registers the same states in the same order (the collective contract),
// so deduplication is positional: the first rank to reach position pos
// fills the slot, later ranks find it occupied. Comparing positions
// instead of values keeps non-comparable implementations (struct values
// holding slices or maps) usable.
func (r *runner) noteState(st Redistributable, pos int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if pos == len(r.states) {
		r.states = append(r.states, st)
	}
}

// sharedStates returns the registry for a joining rank's Context.
func (r *runner) sharedStates() []Redistributable {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Redistributable{}, r.states...)
}

// emit delivers a lifecycle event to the configured logger.
func (r *runner) emit(ev Event) {
	if r.cfg.logger != nil {
		r.cfg.logger(ev)
	}
}

// worker is the entry point for ranks spawned by an expansion: rebuild
// custom state from the redistributed backing storage, give the app its
// OnResize(Joined) notification, and join the iteration loop.
func (r *runner) worker() resize.Worker {
	return func(s *resize.Session) error {
		rc := &Context{s: s, run: r, states: r.sharedStates()}
		for _, st := range rc.states {
			if err := st.Unpack(rc); err != nil {
				return fmt.Errorf("reshape: unpack state on joined rank: %w", err)
			}
		}
		if h, ok := r.app.(ResizeHandler); ok {
			ev := ResizeEvent{Kind: Joined, To: s.Topo(), Iter: s.Iter()}
			if err := h.OnResize(rc, ev); err != nil {
				return fmt.Errorf("reshape: on-resize (joined): %w", err)
			}
		}
		return r.loop(rc)
	}
}

// cancelled collectively agrees on ctx cancellation: rank 0 observes the
// context and broadcasts the verdict so every rank leaves the loop at the
// same iteration boundary (a rank returning alone would strand the others
// in collectives). Skipped entirely for non-cancellable contexts.
func (r *runner) cancelled(s *resize.Session) bool {
	if r.ctx.Done() == nil {
		return false
	}
	flag := 0
	if s.Comm().Rank() == 0 && r.ctx.Err() != nil {
		flag = 1
	}
	return s.Comm().BcastInt(0, flag) != 0
}

// loop is the canonical outer loop of a ReSHAPE application — the code
// every pre-SDK app duplicated in its worker closure.
func (r *runner) loop(rc *Context) error {
	s := rc.s
	cp, isCheckpointer := r.app.(Checkpointer)
	h, isResizeHandler := r.app.(ResizeHandler)
	for s.Iter() < r.cfg.maxIter {
		if r.cancelled(s) {
			return r.ctx.Err()
		}
		t0 := r.cfg.now()
		if err := r.app.Iterate(rc); err != nil {
			return fmt.Errorf("reshape: iterate %d: %w", s.Iter(), err)
		}
		elapsed := r.cfg.now().Sub(t0).Seconds()
		avg := s.Log(elapsed)
		if s.Comm().Rank() == 0 {
			// The iteration just finished but the session counter advances
			// only at the resize point / Advance, so +1 keeps every event
			// kind on the same completed-iteration convention.
			r.emit(Event{Kind: EventIterate, Iter: s.Iter() + 1, Topo: s.Topo(), Seconds: avg})
		}

		if (s.Iter()+1)%r.cfg.resizeEvery != 0 {
			// Not a resize point: count the iteration and keep going.
			s.Advance()
			continue
		}
		if isCheckpointer {
			if err := cp.Checkpoint(rc); err != nil {
				return fmt.Errorf("reshape: checkpoint: %w", err)
			}
		}
		for _, st := range rc.states {
			if err := st.Pack(rc); err != nil {
				return fmt.Errorf("reshape: pack state: %w", err)
			}
		}
		prev := s.Topo()
		// Log already allreduced the iteration time; reuse its average
		// instead of paying Resize's second cluster-wide reduction.
		status, err := s.ResizeAveraged(avg)
		if err != nil {
			return fmt.Errorf("reshape: resize point: %w", err)
		}
		if status == resize.Retired {
			r.emit(Event{Kind: EventRetire, Iter: s.Iter(), Topo: prev, Rank: s.Comm().Rank()})
			return nil
		}
		if cur := s.Topo(); cur != prev {
			rc.resizes++
			for _, st := range rc.states {
				if err := st.Unpack(rc); err != nil {
					return fmt.Errorf("reshape: unpack state: %w", err)
				}
			}
			kind := Expanded
			if cur.Count() < prev.Count() {
				kind = Shrunk
			}
			if isResizeHandler {
				ev := ResizeEvent{Kind: kind, From: prev, To: cur, Seconds: s.LastRedist(), Iter: s.Iter()}
				if err := h.OnResize(rc, ev); err != nil {
					return fmt.Errorf("reshape: on-resize: %w", err)
				}
			}
			if s.Comm().Rank() == 0 {
				r.emit(Event{Kind: EventResize, Iter: s.Iter(), From: prev, Topo: cur, Seconds: s.LastRedist()})
			}
		}
	}
	// If the final iteration fell between resize points, flush once more so
	// checkpointed and custom state reflect it (Report snapshots follow).
	if s.Iter()%r.cfg.resizeEvery != 0 {
		if isCheckpointer {
			if err := cp.Checkpoint(rc); err != nil {
				return fmt.Errorf("reshape: final checkpoint: %w", err)
			}
		}
		for _, st := range rc.states {
			if err := st.Pack(rc); err != nil {
				return fmt.Errorf("reshape: final pack: %w", err)
			}
		}
	}
	if s.Comm().Rank() == 0 {
		r.emit(Event{Kind: EventDone, Iter: s.Iter(), Topo: s.Topo()})
	}
	return s.Done()
}
