package reshape_test

import (
	"context"
	"testing"

	"repro/internal/grid"
	"repro/internal/scheduler"
	"repro/pkg/reshape"
)

// TestSubmitWithPriority covers the SDK submission surface: the spec
// reaches the scheduler with the option-applied priority and the queue
// honours it.
func TestSubmitWithPriority(t *testing.T) {
	srv := scheduler.NewServer(4, false, nil)
	ctx := context.Background()
	start := grid.Topology{Rows: 2, Cols: 2}
	spec := scheduler.JobSpec{
		Name: "sdk", App: "lu", ProblemSize: 8000, Iterations: 5,
		InitialTopo: start, Chain: []grid.Topology{start},
	}

	hogID, err := reshape.Submit(ctx, srv, spec)
	if err != nil {
		t.Fatal(err)
	}
	loID, err := reshape.Submit(ctx, srv, spec)
	if err != nil {
		t.Fatal(err)
	}
	hiID, err := reshape.Submit(ctx, srv, spec, reshape.WithPriority(3))
	if err != nil {
		t.Fatal(err)
	}

	st, err := srv.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prio := map[int]int{}
	for _, j := range st.Jobs {
		prio[j.ID] = j.Priority
	}
	if prio[hiID] != 3 || prio[loID] != 0 {
		t.Fatalf("priorities %v: want job %d at 3, job %d at 0", prio, hiID, loID)
	}

	// The priority submission overtakes the earlier one in the queue.
	started, err := srv.Core().Finish(hogID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0].ID != hiID {
		t.Fatalf("started %v, want priority job %d", started, hiID)
	}
}

// TestSubmitWithTenant: the tenant tag applied at submission shows up on
// the job and in the per-tenant status rollup.
func TestSubmitWithTenant(t *testing.T) {
	srv := scheduler.NewServer(8, false, nil)
	ctx := context.Background()
	start := grid.Topology{Rows: 2, Cols: 2}
	spec := scheduler.JobSpec{
		Name: "sdk", App: "lu", ProblemSize: 8000, Iterations: 5,
		InitialTopo: start, Chain: []grid.Topology{start},
	}

	id, err := reshape.Submit(ctx, srv, spec, reshape.WithTenant("acme"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, j := range st.Jobs {
		if j.ID == id && j.Tenant == "acme" {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %d not reported under tenant acme: %+v", id, st.Jobs)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "acme" || st.Tenants[0].Procs != 4 {
		t.Fatalf("tenant rollup %+v, want acme with 4 procs", st.Tenants)
	}
}
