// Package reshape is the public SDK for writing resizable applications:
// iterative codes whose processor set a ReSHAPE scheduler may grow or
// shrink between iterations while they run.
//
// An application implements the App lifecycle — Init registers its
// distributed state, Iterate performs one outer iteration — and hands
// itself to Run:
//
//	type solver struct{}
//
//	func (solver) Init(rc *reshape.Context) error {
//		a := rc.RegisterArray("A", 64, 64, 4, 4)
//		rc.FillArray(a, func(i, j int) float64 { return 1 / float64(1+i+j) })
//		return nil
//	}
//
//	func (solver) Iterate(rc *reshape.Context) error {
//		a, _ := rc.Array("A")
//		return apps.DistLU(rc.Grid(), a.LayoutFor(rc.Topo()), a.Data)
//	}
//
//	rep, err := reshape.Run(ctx, solver{},
//		reshape.WithScheduler(srv), reshape.WithJobID(id),
//		reshape.WithTopology(grid.Topology{Rows: 1, Cols: 2}),
//		reshape.WithMaxIterations(10))
//
// Run owns the loop the paper calls the "simple API" usage pattern:
// iterate, log the iteration time, hit a resize point, and either continue
// on a (possibly different) processor set or retire. Everything the
// pre-SDK code hand-rolled per application — the worker closure, resize
// points, iteration accounting, spawned-rank re-entry — lives in the
// runner. Registered arrays ride the fused block-cyclic redistribution at
// every topology change; replicated buffers are re-broadcast from rank 0;
// custom state participates through the Redistributable interface.
//
// Optional lifecycle hooks refine the default behavior: an App that also
// implements ResizeHandler is notified after every topology change (and on
// ranks that just spawned); one that implements Checkpointer is called at
// each resize point before the scheduler is contacted. Typed lifecycle
// Events stream to the Logger installed with WithLogger.
//
// The scheduler connection is any implementation of the resize.Client
// capability — the in-process scheduler.Server, the v1 rpc.Client and the
// rpc/v2 reshape client (internal/reshape) all satisfy the full
// resize.Scheduler interface, so applications are transport-agnostic.
//
// Layering: App → Run → resize.Session → scheduler (see DESIGN.md, "The
// application SDK"). The Context is a thin adapter over resize.Session;
// Session (and the advanced per-stage API it exposes) remains available
// through Context.Session for code that needs the mechanism directly.
//
// App implementations are shared by every rank (ranks are goroutines of
// one process), so they must be safe for concurrent method calls; keep
// rank-local state in the Context's session — registered arrays and
// replicated buffers — not in App struct fields.
package reshape
