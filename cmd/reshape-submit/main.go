// Command reshape-submit submits a job to a reshaped daemon (the paper's
// command-line submission process) or queries scheduler status.
//
// Usage:
//
//	reshape-submit -addr 127.0.0.1:7077 -name mylu -app lu -n 64 -nb 4 \
//	    -iters 10 -rows 1 -cols 2 -max 16 -wait
//	reshape-submit -addr 127.0.0.1:7077 -status
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/grid"
	"repro/internal/rpc"
	"repro/internal/scheduler"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "daemon address")
	status := flag.Bool("status", false, "print scheduler status and exit")
	name := flag.String("name", "job", "job name")
	app := flag.String("app", "lu", "application: lu, mm, jacobi, fft, mw")
	n := flag.Int("n", 64, "problem size")
	nb := flag.Int("nb", 4, "block size")
	iters := flag.Int("iters", 10, "outer iterations")
	rows := flag.Int("rows", 1, "initial grid rows")
	cols := flag.Int("cols", 2, "initial grid columns")
	maxProcs := flag.Int("max", 16, "largest processor count in the configuration chain")
	wait := flag.Bool("wait", false, "block until the job completes")
	flag.Parse()

	cl := &rpc.Client{Addr: *addr}

	if *status {
		st, err := cl.Status()
		if err != nil {
			fail(err)
		}
		fmt.Printf("processors: %d total, %d free\n", st.Total, st.Free)
		for _, j := range st.Jobs {
			fmt.Printf("job %d %-12s %-8s topo=%v submit=%.1f start=%.1f end=%.1f\n",
				j.ID, j.Name, j.State, j.Topo, j.Submit, j.Start, j.End)
		}
		return
	}

	initial := grid.Topology{Rows: *rows, Cols: *cols}
	var chain []grid.Topology
	if *app == "lu" || *app == "mm" {
		chain = grid.GrowthChain(initial, *n, *maxProcs)
	} else {
		for _, p := range grid.Chain1D(*n, initial.Count(), *maxProcs) {
			chain = append(chain, grid.Row1D(p))
		}
		if len(chain) == 0 || *app == "mw" {
			chain = nil
			for p := initial.Count(); p <= *maxProcs; p += 2 {
				chain = append(chain, grid.Row1D(p))
			}
		}
		initial = chain[0]
	}

	id, err := cl.Submit(scheduler.JobSpec{
		Name:        *name,
		App:         *app,
		ProblemSize: *n,
		BlockSize:   *nb,
		Iterations:  *iters,
		InitialTopo: initial,
		Chain:       chain,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("submitted job %d (%s, %s, n=%d) starting on %v\n", id, *name, *app, *n, initial)
	if *wait {
		if err := cl.Wait(id); err != nil {
			fail(err)
		}
		fmt.Printf("job %d finished\n", id)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reshape-submit:", err)
	os.Exit(1)
}
