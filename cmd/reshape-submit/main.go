// Command reshape-submit submits a job to a reshaped daemon (the paper's
// command-line submission process), queries scheduler status, or streams
// the cluster's job events. It speaks rpc/v2 (one multiplexed connection,
// server-push watches) via the reshape client.
//
// Usage:
//
//	reshape-submit -addr 127.0.0.1:7077 -name mylu -app lu -n 64 -nb 4 \
//	    -iters 10 -rows 1 -cols 2 -max 16 -wait
//	reshape-submit -addr 127.0.0.1:7077 -name urgent -app lu -n 64 -priority 5
//	reshape-submit -addr 127.0.0.1:7077 -status
//	reshape-submit -addr 127.0.0.1:7077 -watch
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/grid"
	"repro/internal/reshape"
	"repro/internal/scheduler"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "daemon address")
	status := flag.Bool("status", false, "print scheduler status and exit")
	watch := flag.Bool("watch", false, "stream job events until interrupted")
	timeout := flag.Duration("timeout", 0, "overall deadline for the command (0 = none)")
	name := flag.String("name", "job", "job name")
	app := flag.String("app", "lu", "application: lu, mm, jacobi, fft, mw, cg")
	n := flag.Int("n", 64, "problem size")
	nb := flag.Int("nb", 4, "block size")
	iters := flag.Int("iters", 10, "outer iterations")
	rows := flag.Int("rows", 1, "initial grid rows")
	cols := flag.Int("cols", 2, "initial grid columns")
	maxProcs := flag.Int("max", 16, "largest processor count in the configuration chain")
	priority := flag.Int("priority", 0, "scheduler priority: higher starts sooner; waiting jobs age upward under the arbiter, so low priorities cannot starve")
	tenant := flag.String("tenant", "", "tenant identity: tags submitted jobs for fair-share scheduling and attributes every request to the tenant's admission quota")
	wait := flag.Bool("wait", false, "block until the job completes")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cl, err := reshape.Dial(*addr, reshape.WithDialTimeout(5*time.Second), reshape.WithTenant(*tenant))
	if err != nil {
		fail(err)
	}
	defer cl.Close()

	if *status {
		printStatus(ctx, cl)
		return
	}
	if *watch {
		streamEvents(ctx, cl)
		return
	}

	initial := grid.Topology{Rows: *rows, Cols: *cols}
	var chain []grid.Topology
	if *app == "lu" || *app == "mm" {
		chain = grid.GrowthChain(initial, *n, *maxProcs)
	} else {
		for _, p := range grid.Chain1D(*n, initial.Count(), *maxProcs) {
			chain = append(chain, grid.Row1D(p))
		}
		if len(chain) == 0 || *app == "mw" {
			chain = nil
			for p := initial.Count(); p <= *maxProcs; p += 2 {
				chain = append(chain, grid.Row1D(p))
			}
		}
		initial = chain[0]
	}

	id, err := cl.Submit(ctx, scheduler.JobSpec{
		Name:        *name,
		App:         *app,
		ProblemSize: *n,
		BlockSize:   *nb,
		Iterations:  *iters,
		Priority:    *priority,
		InitialTopo: initial,
		Chain:       chain,
	})
	if err != nil {
		fail(err)
	}
	who := ""
	if *tenant != "" {
		who = fmt.Sprintf(", tenant %s", *tenant)
	}
	fmt.Printf("submitted job %d (%s, %s, n=%d, priority %d%s) starting on %v\n",
		id, *name, *app, *n, *priority, who, initial)
	if *wait {
		// Follow the job's own event stream while waiting — the v2 watch
		// replaces v1's connection-pinning blocking wait.
		sub, err := cl.Watch(ctx, id)
		if err != nil {
			fail(err)
		}
		done := make(chan error, 1)
		go func() { done <- cl.Wait(ctx, id) }()
		for {
			select {
			case ev, ok := <-sub.C:
				if ok {
					printEvent(ev)
				}
			case err := <-done:
				sub.Cancel()
				if err != nil {
					fail(err)
				}
				fmt.Printf("job %d finished\n", id)
				return
			}
		}
	}
}

func printStatus(ctx context.Context, cl *reshape.Client) {
	st, err := cl.Status(ctx)
	if err != nil {
		fail(err)
	}
	fmt.Printf("processors: %d total, %d busy, %d free; %d job(s) queued\n",
		st.Total, st.Busy, st.Free, st.QueueLen)
	for _, u := range st.Tenants {
		fmt.Printf("tenant %-12s running=%-3d queued=%-3d procs=%d\n",
			u.Tenant, u.Running, u.Queued, u.Procs)
	}
	for _, j := range st.Jobs {
		who := ""
		if j.Tenant != "" {
			who = " tenant=" + j.Tenant
		}
		fmt.Printf("job %d %-12s %-8s %-8s prio=%-2d topo=%-7v procs=%-3d submit=%.1f start=%.1f end=%.1f%s\n",
			j.ID, j.Name, j.App, j.State, j.Priority, j.Topo, j.Procs, j.Submit, j.Start, j.End, who)
	}
}

func streamEvents(ctx context.Context, cl *reshape.Client) {
	sub, err := cl.Watch(ctx, scheduler.AllJobs)
	if err != nil {
		fail(err)
	}
	defer sub.Cancel()
	for ev := range sub.C {
		printEvent(ev)
	}
	if err := ctx.Err(); err != nil && err != context.Canceled {
		fail(err)
	}
}

func printEvent(ev scheduler.JobEvent) {
	fmt.Printf("t=%8.3fs  %-7s job %d %-12s topo=%-7v busy=%d free=%d\n",
		ev.Time, ev.Kind, ev.JobID, ev.Job, ev.Topo, ev.Busy, ev.Free)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reshape-submit:", err)
	os.Exit(1)
}
