// Command reshaped is the ReSHAPE scheduler daemon: it manages a pool of
// processors, accepts job submissions over TCP, runs the submitted
// applications on its own message-passing runtime, and dynamically resizes
// them according to the Remap Scheduler policy.
//
// The daemon speaks both wire protocols on one port: the one-shot v1
// protocol and the multiplexed rpc/v2 protocol with streaming job watches
// (see internal/rpc), negotiated per connection from its first byte.
//
// Usage:
//
//	reshaped -addr 127.0.0.1:7077 -procs 16 -backfill
//	reshaped -procs 1024 -shards 16    # sharded pool for large clusters
//	reshaped -procs 64 -arbiter benefit  # cluster-wide benefit-ranked arbitration
//
// Submit jobs with reshape-submit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/apps"
	"repro/internal/rpc"
	"repro/internal/scheduler"
	"repro/internal/scheduler/arbiter"
	sdk "repro/pkg/reshape"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address")
	procs := flag.Int("procs", 16, "number of processors in the pool")
	backfill := flag.Bool("backfill", true, "enable simple backfill in addition to FCFS")
	shards := flag.Int("shards", 0, "processor-pool shard count (0 = one shard per 64 processors)")
	arb := flag.String("arbiter", "fcfs",
		"resize arbitration: fcfs (published single-job policy) or benefit (cluster-wide benefit ranking with priorities, aging and coordinated shrink)")
	flag.Parse()

	if *shards <= 0 {
		*shards = scheduler.DefaultShards(*procs)
	}
	core := scheduler.NewCoreSharded(*procs, *shards, *backfill)
	switch *arb {
	case "fcfs":
		// The default single-job policy path.
	case "benefit":
		core.SetArbiter(&arbiter.BenefitRanked{})
	default:
		fmt.Fprintf(os.Stderr, "reshaped: unknown -arbiter %q (want fcfs or benefit)\n", *arb)
		os.Exit(2)
	}
	var srv *scheduler.Server
	srv = scheduler.NewServerCore(core, func(j *scheduler.Job) {
		cfg := apps.Config{
			App:        j.Spec.App,
			N:          j.Spec.ProblemSize,
			NB:         j.Spec.BlockSize,
			Iterations: j.Spec.Iterations,
		}
		if cfg.NB <= 0 {
			cfg.NB = 2
		}
		log.Printf("starting job %d (%s) on %v", j.ID, j.Spec.Name, j.Topo)
		// The job runs through the application SDK; its lifecycle events
		// surface the resize trajectory in the daemon log.
		logger := sdk.Logger(func(ev sdk.Event) {
			if ev.Kind == sdk.EventResize {
				log.Printf("job %d (%s) resized %v -> %v (%.4fs redistribution)",
					j.ID, j.Spec.Name, ev.From, ev.Topo, ev.Seconds)
			}
		})
		if err := apps.Launch(srv, j.ID, j.Topo, cfg, sdk.WithLogger(logger)); err != nil {
			log.Printf("job %d failed: %v", j.ID, err)
			_ = srv.JobError(context.Background(), j.ID)
			return
		}
		log.Printf("job %d (%s) finished", j.ID, j.Spec.Name)
	})

	rpcSrv, err := rpc.Serve(*addr, srv, rpc.WithLogf(log.Printf))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("reshaped: %d processors in %d pool shard(s), %s arbitration, listening on %s (rpc v1+v2)",
		*procs, core.Pool().NumShards(), *arb, rpcSrv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := rpcSrv.Stats()
	log.Printf("reshaped: shutting down (%d v1 conns, %d v2 conns, %d requests, %d watches, %d malformed)",
		st.V1Conns, st.V2Conns, st.Requests, st.Watches, st.Malformed)
	_ = rpcSrv.Close()
}
