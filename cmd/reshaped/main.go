// Command reshaped is the ReSHAPE scheduler daemon: it manages a pool of
// processors, accepts job submissions over TCP, runs the submitted
// applications on its own message-passing runtime, and dynamically resizes
// them according to the Remap Scheduler policy.
//
// The daemon speaks both wire protocols on one port: the one-shot v1
// protocol and the multiplexed rpc/v2 protocol with streaming job watches
// (see internal/rpc), negotiated per connection from its first byte.
//
// With -wal-dir set the control plane is durable: every scheduler input is
// journaled to a write-ahead log before it is acknowledged, snapshots are
// taken every -snapshot-every records, and a restarted daemon replays the
// directory to resume with every queued and running job intact (see
// internal/durability). Recovered running jobs are relaunched on their
// recovered allocations; rpc/v2 clients reconnect and resubscribe their
// watches on their own.
//
// Usage:
//
//	reshaped -addr 127.0.0.1:7077 -procs 16 -backfill
//	reshaped -procs 1024 -shards 16    # sharded pool for large clusters
//	reshaped -procs 64 -arbiter benefit  # cluster-wide benefit-ranked arbitration
//	reshaped -procs 64 -wal-dir /var/lib/reshaped  # durable control plane
//	reshaped -procs 64 -arbiter fairshare -tenant-weights acme=3,beta=1 \
//	    -tenant-rate 50 -tenant-inflight 64   # multi-tenant fair share + quotas
//
// Submit jobs with reshape-submit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/apps"
	"repro/internal/durability"
	"repro/internal/rpc"
	"repro/internal/scheduler"
	"repro/internal/scheduler/arbiter"
	"repro/internal/scheduler/fairshare"
	"repro/internal/scheduler/rebalance"
	sdk "repro/pkg/reshape"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address")
	procs := flag.Int("procs", 16, "number of processors in the pool")
	backfill := flag.Bool("backfill", true, "enable simple backfill in addition to FCFS")
	shards := flag.Int("shards", 0, "processor-pool shard count (0 = one shard per 64 processors)")
	arb := flag.String("arbiter", "fcfs",
		"resize arbitration: fcfs (published single-job policy), benefit (cluster-wide benefit ranking with priorities, aging and coordinated shrink), fairshare (tenant-weighted shares arbitrated above benefit; see -tenant-weights) or rebalance (benefit plus periodic curve-driven global replanning; see -rebalance-every)")
	tenantWeights := flag.String("tenant-weights", "",
		"fair-share weights as tenant=weight pairs, e.g. \"acme=3,beta=1\" (unlisted tenants weigh 1; requires -arbiter fairshare)")
	tenantRate := flag.Float64("tenant-rate", 0,
		"admission control: sustained requests/sec allowed per tenant (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0,
		"admission control: per-tenant burst size (0 = derived from -tenant-rate)")
	tenantInflight := flag.Int("tenant-inflight", 0,
		"admission control: concurrent in-flight requests allowed per tenant, blocking waits and watches included (0 = unlimited)")
	connRate := flag.Float64("conn-rate", 0,
		"admission control: sustained requests/sec allowed per rpc/v2 connection (0 = unlimited)")
	connBurst := flag.Int("conn-burst", 0,
		"admission control: per-connection burst size (0 = derived from -conn-rate)")
	connInflight := flag.Int("conn-inflight", 0,
		"admission control: concurrent in-flight requests allowed per rpc/v2 connection (0 = unlimited)")
	rebalanceEvery := flag.Duration("rebalance-every", 0,
		"global-rebalancer planning-tick interval (0 = ticks disabled; requires -arbiter rebalance to have any effect)")
	walDir := flag.String("wal-dir", "",
		"write-ahead-log directory for a durable control plane (empty = volatile scheduler state)")
	snapshotEvery := flag.Uint64("snapshot-every", 10000,
		"snapshot the scheduler state and truncate the log every N journaled records (0 = never)")
	walSync := flag.String("wal-sync", "always",
		"journal fsync policy: always (no acknowledged op can be lost), interval (batched, bounded loss window on machine crash) or none (page-cache only)")
	flag.Parse()

	if *shards <= 0 {
		*shards = scheduler.DefaultShards(*procs)
	}
	// The arbiter is configuration, not journaled state: a recovering
	// daemon must install the same arbitration the previous process ran
	// before any journal record replays through the core.
	if *tenantWeights != "" && *arb != "fairshare" {
		log.Printf("reshaped: -tenant-weights is set but -arbiter is %q; weights will be ignored", *arb)
	}
	configure := func(core *scheduler.Core) error {
		switch *arb {
		case "fcfs":
			// The default single-job policy path.
			return nil
		case "benefit":
			core.SetArbiter(&arbiter.BenefitRanked{})
			return nil
		case "fairshare":
			weights, err := fairshare.ParseWeights(*tenantWeights)
			if err != nil {
				return fmt.Errorf("reshaped: %w", err)
			}
			core.SetArbiter(fairshare.New(weights))
			return nil
		case "rebalance":
			core.SetArbiter(rebalance.New(nil))
			return nil
		default:
			return fmt.Errorf("reshaped: unknown -arbiter %q (want fcfs, benefit, fairshare or rebalance)", *arb)
		}
	}

	var (
		core  *scheduler.Core
		srv   *scheduler.Server
		store *durability.Store
	)
	starter := func(j *scheduler.Job) { startJob(srv, j) }

	if *walDir == "" {
		core = scheduler.NewCoreSharded(*procs, *shards, *backfill)
		if err := configure(core); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		srv = scheduler.NewServerCore(core, starter)
	} else {
		policy, err := durability.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reshaped: %v\n", err)
			os.Exit(2)
		}
		st, rec, err := durability.Open(*walDir, durability.Options{
			SnapshotEvery: *snapshotEvery,
			Sync:          policy,
			// core and srv are both assigned below, before the journal hook
			// (and therefore Capture) can run.
			Capture: func() (*scheduler.CoreState, uint64) { return core.PersistState(), srv.Seq() },
			Logf:    log.Printf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "reshaped: open wal: %v\n", err)
			os.Exit(1)
		}
		store = st
		if rec.TornTail {
			log.Printf("reshaped: discarded a torn (never acknowledged) record at the log tail")
		}
		recovered, info, err := rec.Restore(func(cs *scheduler.CoreState) (*scheduler.Core, error) {
			var c *scheduler.Core
			if cs == nil {
				c = scheduler.NewCoreSharded(*procs, *shards, *backfill)
			} else {
				var err error
				if c, err = scheduler.NewCoreFromState(cs); err != nil {
					return nil, err
				}
				if cs.Total != *procs {
					log.Printf("reshaped: recovered pool has %d processors; ignoring -procs %d", cs.Total, *procs)
				}
			}
			return c, configure(c)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "reshaped: recover wal: %v\n", err)
			os.Exit(1)
		}
		core = recovered
		core.SetJournal(store.Append)
		srv = scheduler.NewServerRecovered(core, info.Seq, info.Clock, starter)
		if info.Recovered {
			log.Printf("reshaped: recovered %d job(s) from %s (%d record(s) replayed, clock %.3fs)",
				info.Jobs, *walDir, info.Replayed, info.Clock)
			// This daemon runs its jobs in-process, so the previous
			// process's workers died with it: relaunch every recovered
			// running job on its recovered allocation.
			for _, j := range srv.RelaunchRunning() {
				log.Printf("reshaped: relaunched job %d (%s) on %v", j.ID, j.Spec.Name, j.Topo)
			}
		}
	}

	limits := rpc.Limits{
		TenantRate: *tenantRate, TenantBurst: *tenantBurst, TenantInflight: *tenantInflight,
		ConnRate: *connRate, ConnBurst: *connBurst, ConnInflight: *connInflight,
	}
	rpcSrv, err := rpc.Serve(*addr, srv, rpc.WithLogf(log.Printf), rpc.WithLimits(limits))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	durable := "volatile"
	if store != nil {
		durable = fmt.Sprintf("wal %s (snapshot every %d, fsync %s)", *walDir, *snapshotEvery, *walSync)
	}
	log.Printf("reshaped: %d processors in %d pool shard(s), %s arbitration, %s, listening on %s (rpc v1+v2)",
		core.Total, core.Pool().NumShards(), *arb, durable, rpcSrv.Addr())
	if limits != (rpc.Limits{}) {
		log.Printf("reshaped: admission control on (tenant %.3g req/s burst %d inflight %d; conn %.3g req/s burst %d inflight %d)",
			limits.TenantRate, limits.TenantBurst, limits.TenantInflight,
			limits.ConnRate, limits.ConnBurst, limits.ConnInflight)
	}

	stopTicks := make(chan struct{})
	if *rebalanceEvery > 0 {
		if *arb != "rebalance" {
			log.Printf("reshaped: -rebalance-every is set but -arbiter is %q; ticks will be no-ops", *arb)
		}
		go func() {
			t := time.NewTicker(*rebalanceEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := srv.Rebalance(context.Background()); err != nil {
						log.Printf("reshaped: rebalance tick: %v", err)
					}
				case <-stopTicks:
					return
				}
			}
		}()
		log.Printf("reshaped: global rebalancer ticking every %s", *rebalanceEvery)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stopTicks)
	st := rpcSrv.Stats()
	log.Printf("reshaped: shutting down (%d v1 conns, %d v2 conns, %d requests, %d watches, %d malformed, %d shed)",
		st.V1Conns, st.V2Conns, st.Requests, st.Watches, st.Malformed, st.Shed)
	_ = rpcSrv.Close()
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("reshaped: close wal: %v", err)
		}
	}
}

// startJob launches one allocated job through the application SDK.
func startJob(srv *scheduler.Server, j *scheduler.Job) {
	cfg := apps.Config{
		App:        j.Spec.App,
		N:          j.Spec.ProblemSize,
		NB:         j.Spec.BlockSize,
		Iterations: j.Spec.Iterations,
	}
	if cfg.NB <= 0 {
		cfg.NB = 2
	}
	log.Printf("starting job %d (%s) on %v", j.ID, j.Spec.Name, j.Topo)
	// The job runs through the application SDK; its lifecycle events
	// surface the resize trajectory in the daemon log.
	logger := sdk.Logger(func(ev sdk.Event) {
		if ev.Kind == sdk.EventResize {
			log.Printf("job %d (%s) resized %v -> %v (%.4fs redistribution)",
				j.ID, j.Spec.Name, ev.From, ev.Topo, ev.Seconds)
		}
	})
	if err := apps.Launch(srv, j.ID, j.Topo, cfg, sdk.WithLogger(logger)); err != nil {
		log.Printf("job %d failed: %v", j.ID, err)
		_ = srv.JobError(context.Background(), j.ID)
		return
	}
	log.Printf("job %d (%s) finished", j.ID, j.Spec.Name)
}
