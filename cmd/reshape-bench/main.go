// Command reshape-bench regenerates the paper's tables and figures. Each
// experiment prints the rows/series the paper reports; see EXPERIMENTS.md
// for the paper-vs-measured comparison.
//
// Usage:
//
//	reshape-bench -exp all
//	reshape-bench -exp fig3a
//	reshape-bench -exp table4
//
// The -cpuprofile/-memprofile flags wrap the selected experiments in pprof
// collection; combined with -exp scale -scale-jobs they reproduce the
// million-job scheduler profiles DESIGN.md's scaling section is based on:
//
//	reshape-bench -exp scale -scale-jobs 1000000 -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/perfmodel"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table2, fig2a, fig2b, fig3a, fig3b, fig4a, fig4b, table4, fig5a, fig5b, table5, ablation, loadsweep, scale")
	scaleJobs := flag.String("scale-jobs", "", "comma-separated job counts for -exp scale (default 1000,10000)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile taken after the selected experiments to this file")
	flag.Parse()
	params := perfmodel.SystemX()
	w := os.Stdout

	var scaleCounts []int
	if *scaleJobs != "" {
		for _, part := range strings.Split(*scaleJobs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "reshape-bench: bad -scale-jobs entry %q\n", part)
				os.Exit(2)
			}
			scaleCounts = append(scaleCounts, n)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	var w1, w2 *workload.Comparison
	needW1 := func() *workload.Comparison {
		if w1 == nil {
			c, err := experiments.RunW1(params)
			check(err)
			w1 = c
		}
		return w1
	}
	needW2 := func() *workload.Comparison {
		if w2 == nil {
			c, err := experiments.RunW2(params)
			check(err)
			w2 = c
		}
		return w2
	}

	run := map[string]func(){
		"table2": func() { experiments.PrintTable2(w) },
		"fig2a":  func() { check(experiments.PrintFig2a(w, params)) },
		"fig2b":  func() { experiments.PrintFig2b(w, params) },
		"fig3a":  func() { check(experiments.PrintFig3a(w, params)) },
		"fig3b":  func() { check(experiments.PrintFig3b(w, params)) },
		"fig4a": func() {
			experiments.PrintAllocHistory(w, "Figure 4(a) workload 1", needW1().Dynamic,
				[]string{"LU", "MM", "Master-Worker", "Jacobi", "2D FFT"})
		},
		"fig4b":  func() { experiments.PrintBusySeries(w, "Figure 4(b) workload 1", needW1()) },
		"table4": func() { experiments.PrintTurnaroundTable(w, "Table 4 workload 1", needW1()) },
		"fig5a": func() {
			experiments.PrintAllocHistory(w, "Figure 5(a) workload 2", needW2().Dynamic,
				[]string{"LU", "Jacobi", "Master-Worker", "2D FFT"})
		},
		"fig5b":  func() { experiments.PrintBusySeries(w, "Figure 5(b) workload 2", needW2()) },
		"table5": func() { experiments.PrintTurnaroundTable(w, "Table 5 workload 2", needW2()) },
		"ablation": func() {
			check(experiments.PrintPolicyAblation(w, params))
			fmt.Fprintln(w)
			experiments.PrintScheduleAblation(w)
		},
		"loadsweep": func() { check(experiments.PrintLoadSweep(w, params)) },
		"scale":     func() { check(experiments.PrintSchedulerScale(w, params, scaleCounts...)) },
	}
	order := []string{"table2", "fig2a", "fig2b", "fig3a", "fig3b", "fig4a", "fig4b", "table4", "fig5a", "fig5b", "table5", "ablation", "loadsweep", "scale"}

	if *exp == "all" {
		for _, name := range order {
			run[name]()
			fmt.Fprintln(w)
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "reshape-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	f()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reshape-bench:", err)
		os.Exit(1)
	}
}
