// Command reshapelint is the repo's invariant multichecker: it runs the
// four project-specific analyzers (detcore, journalfirst, durerr,
// ctxfirst) over the packages matching its arguments and exits nonzero on
// any diagnostic. CI runs it over ./... next to go vet; the invariants it
// enforces are documented in DESIGN.md "Enforced invariants".
//
// Usage:
//
//	go run ./cmd/reshapelint ./...
//	go run ./cmd/reshapelint -list            # show analyzers and scopes
//	go run ./cmd/reshapelint ./internal/...   # subset
//
// Escape hatch: //lint:allow <analyzer> <justification> on (or directly
// above) the offending line. The justification is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/detcore"
	"repro/internal/analysis/durerr"
	"repro/internal/analysis/journalfirst"
)

var analyzers = []*analysis.Analyzer{
	detcore.Analyzer,
	journalfirst.Analyzer,
	durerr.Analyzer,
	ctxfirst.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and their package scopes, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reshapelint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repo's invariant analyzers over the named packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
			for _, s := range a.Scope {
				fmt.Printf("%-14s   scope: %s\n", "", s)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	type finding struct {
		pos      string
		msg      string
		analyzer string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			for _, d := range diags {
				findings = append(findings, finding{
					pos:      pkg.Fset.Position(d.Pos).String(),
					msg:      d.Message,
					analyzer: a.Name,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		fmt.Printf("%s: %s [%s]\n", f.pos, f.msg, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reshapelint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
