// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result:
//
//	go test -run XXX -bench BenchmarkArbiter -benchtime 1x . | benchjson
//	[{"name":"BenchmarkArbiter/fcfs-8","iterations":1,
//	  "metrics":{"ns/op":445609,"jobs/s":53891,"mean-wait-s":708.2}}]
//
// CI pipes the scheduler benchmarks through it and uploads the result as
// the BENCH_scheduler.json artifact, so the performance trajectory is
// tracked across PRs in a machine-readable form. Non-benchmark lines
// (headers, PASS/ok trailers) pass through to stderr untouched, keeping
// the human-readable log visible in the CI step output.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	results := []result{} // encode [] (not null) when nothing parses
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parse(line); ok {
			results = append(results, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse decodes one `Benchmark<Name>-P  N  <value> <unit> ...` line.
func parse(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
