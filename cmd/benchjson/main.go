// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result:
//
//	go test -run XXX -bench BenchmarkArbiter -benchtime 1x . | benchjson
//	[{"name":"BenchmarkArbiter/fcfs-8","iterations":1,
//	  "metrics":{"ns/op":445609,"jobs/s":53891,"mean-wait-s":708.2}}]
//
// CI pipes the scheduler benchmarks through it and uploads the result as
// the BENCH_scheduler.json artifact, so the performance trajectory is
// tracked across PRs in a machine-readable form (run with -benchmem and
// allocs/op and B/op flow through like any other metric pair).
// Non-benchmark lines (headers, PASS/ok trailers) pass through to stderr
// untouched, keeping the human-readable log visible in the CI step output.
//
// The -gate flag turns benchjson into a scaling-curve gate on top of the
// conversion: each occurrence takes "num:den:min" where num and den are
// "bench/name:metric" references into the parsed results (GOMAXPROCS
// suffixes like -8 are ignored when matching), and the run fails if
// metric(num) < min * metric(den). CI uses it to fail when jobs/s at the
// 1M-job mix sags below a set fraction of jobs/s at 10k — the flattened
// scaling curve is a gated invariant, not just a tracked number:
//
//	... | benchjson -gate 'BenchmarkSchedulerThroughput/event-1M:jobs/s:BenchmarkSchedulerThroughput/event-10k:jobs/s:0.45'
//
// A gate referencing a benchmark or metric missing from the input is an
// error (a silently skipped gate would pass forever).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// gate is one parsed -gate spec: fail unless num >= min * den.
type gate struct {
	numBench, numMetric string
	denBench, denMetric string
	min                 float64
}

// gateFlags collects repeated -gate occurrences.
type gateFlags []gate

func (g *gateFlags) String() string { return fmt.Sprintf("%d gates", len(*g)) }

func (g *gateFlags) Set(spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 5 {
		return fmt.Errorf("want num-bench:num-metric:den-bench:den-metric:min, got %q", spec)
	}
	min, err := strconv.ParseFloat(parts[4], 64)
	if err != nil || min <= 0 {
		return fmt.Errorf("bad gate minimum %q", parts[4])
	}
	*g = append(*g, gate{
		numBench: parts[0], numMetric: parts[1],
		denBench: parts[2], denMetric: parts[3],
		min: min,
	})
	return nil
}

// procSuffix strips the -<GOMAXPROCS> suffix go test appends to benchmark
// names, so gate specs stay machine-independent.
var procSuffix = regexp.MustCompile(`-\d+$`)

// lookup resolves a bench/metric reference against the parsed results.
func lookup(results []result, bench, metric string) (float64, error) {
	for _, r := range results {
		if procSuffix.ReplaceAllString(r.Name, "") != bench {
			continue
		}
		v, ok := r.Metrics[metric]
		if !ok {
			return 0, fmt.Errorf("benchmark %q has no metric %q", bench, metric)
		}
		return v, nil
	}
	return 0, fmt.Errorf("no benchmark %q in input", bench)
}

func main() {
	var gates gateFlags
	args := os.Args[1:]
	for len(args) > 0 {
		switch {
		case args[0] == "-gate" || args[0] == "--gate":
			if len(args) < 2 {
				fmt.Fprintln(os.Stderr, "benchjson: -gate needs an argument")
				os.Exit(2)
			}
			if err := gates.Set(args[1]); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: -gate:", err)
				os.Exit(2)
			}
			args = args[2:]
		case strings.HasPrefix(args[0], "-gate=") || strings.HasPrefix(args[0], "--gate="):
			if err := gates.Set(args[0][strings.Index(args[0], "=")+1:]); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: -gate:", err)
				os.Exit(2)
			}
			args = args[1:]
		default:
			fmt.Fprintf(os.Stderr, "benchjson: unknown flag %q\n", args[0])
			os.Exit(2)
		}
	}

	results := []result{} // encode [] (not null) when nothing parses
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parse(line); ok {
			results = append(results, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	failed := false
	for _, g := range gates {
		num, err := lookup(results, g.numBench, g.numMetric)
		if err == nil {
			var den float64
			den, err = lookup(results, g.denBench, g.denMetric)
			if err == nil {
				ratio := 0.0
				if den != 0 {
					ratio = num / den
				}
				status := "ok"
				if num < g.min*den {
					status = "FAIL"
					failed = true
				}
				fmt.Fprintf(os.Stderr, "benchjson: gate %s: %s:%s / %s:%s = %.3f (min %.3f)\n",
					status, g.numBench, g.numMetric, g.denBench, g.denMetric, ratio, g.min)
				continue
			}
		}
		fmt.Fprintln(os.Stderr, "benchjson: gate:", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// parse decodes one `Benchmark<Name>-P  N  <value> <unit> ...` line.
func parse(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
